package sr

import (
	"io"
	"sync"
	"testing"

	"livenas/internal/frame"
	"livenas/internal/nn"
)

// These stress tests pin down the synchronization contract between online
// training and inference on a shared model (DESIGN.md "Correctness
// tooling"): one Trainer goroutine may run epochs while other goroutines
// concurrently Sync processor replicas from the model, run processor
// inference, super-resolve on the model directly, and snapshot it. They
// are meaningful under `go test -race ./internal/sr` (part of
// scripts/check.sh); without -race they still assert basic output sanity.

func fillTestFrame(f *frame.Frame, seed int) {
	for i := range f.Pix {
		f.Pix[i] = uint8(i*31 + seed)
	}
}

func newStressTrainer(t *testing.T, model *Model) *Trainer {
	t.Helper()
	cfg := DefaultTrainConfig()
	cfg.ItersPerEpoch = 4
	cfg.Batch = 4
	cfg.GPUs = 2
	tr := NewTrainer(model, cfg, 3)
	for i := 0; i < 12; i++ {
		lr := frame.New(8, 8)
		hr := frame.New(16, 16)
		fillTestFrame(lr, i)
		fillTestFrame(hr, i+1)
		tr.AddSample(lr, hr)
	}
	return tr
}

func TestConcurrentTrainInferSync(t *testing.T) {
	model := NewModel(2, 4, 1)
	trainer := newStressTrainer(t, model)
	proc := NewProcessor(model, 2, RTX2080Ti())

	in := frame.New(24, 24)
	fillTestFrame(in, 7)

	const iters = 25
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // online training epochs (single trainer goroutine)
		defer wg.Done()
		for i := 0; i < iters; i++ {
			trainer.Epoch()
		}
	}()
	go func() { // epoch-boundary weight sync into the processor replicas
		defer wg.Done()
		for i := 0; i < iters; i++ {
			proc.Sync(model)
		}
	}()
	go func() { // strip-parallel inference on the processor
		defer wg.Done()
		for i := 0; i < iters; i++ {
			out, _ := proc.Process(in)
			if out.W != in.W*2 || out.H != in.H*2 {
				t.Errorf("Process returned %dx%d, want %dx%d", out.W, out.H, in.W*2, in.H*2)
				return
			}
		}
	}()
	go func() { // direct inference on the shared training model
		defer wg.Done()
		for i := 0; i < iters; i++ {
			out := model.SuperResolve(in)
			if out.W != in.W*2 || out.H != in.H*2 {
				t.Errorf("SuperResolve returned %dx%d, want %dx%d", out.W, out.H, in.W*2, in.H*2)
				return
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentKernelPoolStress drives the shared kernel worker pool from
// every direction at once: a trainer whose shards fan per-sample gradient
// contexts onto an explicit multi-worker pool, strip-split processor
// inference on replicas sharing that pool, epoch-boundary Sync, and direct
// SuperResolve — all against frames big enough that conv forward/backward
// split into several row blocks. Under -race this pins down that pool
// tasks, arena recycling, and the weight-sharing gradient contexts are
// data-race-free while weights churn.
func TestConcurrentKernelPoolStress(t *testing.T) {
	model := NewModel(2, 4, 1)
	pool := nn.NewPool(4)
	defer pool.Close()
	model.SetKernelPool(pool)
	trainer := newStressTrainer(t, model)
	for i := 0; i < 6; i++ { // larger samples: multi-block backward
		lr := frame.New(48, 40)
		hr := frame.New(96, 80)
		fillTestFrame(lr, i)
		fillTestFrame(hr, i+3)
		trainer.AddSample(lr, hr)
	}
	proc := NewProcessor(model, 2, RTX2080Ti())

	in := frame.New(96, 64)
	fillTestFrame(in, 11)

	const iters = 12
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			trainer.Epoch()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			proc.Sync(model)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			out, _ := proc.Process(in)
			if out.W != in.W*2 || out.H != in.H*2 {
				t.Errorf("Process returned %dx%d, want %dx%d", out.W, out.H, in.W*2, in.H*2)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			out := model.SuperResolve(in)
			if out.W != in.W*2 || out.H != in.H*2 {
				t.Errorf("SuperResolve returned %dx%d, want %dx%d", out.W, out.H, in.W*2, in.H*2)
				return
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentQuantStress exercises the int8 fast path under churn: the
// trainer updates weights (and calibration statistics), Sync rebuilds the
// quantized snapshot, strip-parallel quantized inference and the anytime
// scheduler run against it, and the quality gate samples patches — all
// concurrently on a shared multi-worker kernel pool. Under -race this pins
// down that quantized snapshots, the quant arena, and the gate state are
// data-race-free.
func TestConcurrentQuantStress(t *testing.T) {
	model := NewModel(2, 4, 1)
	pool := nn.NewPool(4)
	defer pool.Close()
	model.SetKernelPool(pool)
	trainer := newStressTrainer(t, model)
	proc := NewProcessor(model, 2, RTX2080Ti())
	proc.EnableQuant(model, 0.5)

	in := frame.New(96, 64)
	fillTestFrame(in, 11)
	hr := frame.New(192, 128)
	fillTestFrame(hr, 13)

	const iters = 12
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			trainer.Epoch()
		}
	}()
	go func() { // epoch-boundary sync rebuilds the int8 snapshot
		defer wg.Done()
		for i := 0; i < iters; i++ {
			proc.Sync(model)
		}
	}()
	go func() { // quantized whole-frame + anytime patch-scheduled inference
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 1 {
				proc.SetAnytimeBudget(mixedBudget(RTX2080Ti(), in))
			} else {
				proc.SetAnytimeBudget(0)
			}
			out, _ := proc.Process(in)
			if out.W != in.W*2 || out.H != in.H*2 {
				t.Errorf("Process returned %dx%d, want %dx%d", out.W, out.H, in.W*2, in.H*2)
				return
			}
		}
	}()
	go func() { // online quality gate sampling
		defer wg.Done()
		for i := 0; i < iters; i++ {
			proc.ObserveGatePatch(in, hr)
		}
	}()
	wg.Wait()
}

func TestConcurrentSnapshotWhileTraining(t *testing.T) {
	model := NewModel(2, 4, 1)
	trainer := newStressTrainer(t, model)

	const iters = 20
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			trainer.Epoch()
		}
	}()
	go func() { // step-consistent snapshots via Save's read lock
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := model.Save(io.Discard); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()
	go func() { // external replica pulls, as a persistent-model store would
		defer wg.Done()
		replica := model.Clone()
		for i := 0; i < iters; i++ {
			replica.CopyWeightsFrom(model)
		}
	}()
	wg.Wait()
}
