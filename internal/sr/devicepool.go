package sr

import "sync"

// DevicePool models a node-level pool of identical GPUs shared across
// ingest streams. Device models the *cost* of work on one GPU; DevicePool
// models the *capacity* of M of them, so a multi-tenant ingest node can
// admission-control streams against aggregate demand (the fleet layer's
// generalization of the paper's §6.2 intra-stream multi-GPU model to
// inter-stream allocation).
//
// Capacity is counted in whole GPU slots. A stream holding k slots runs its
// training and inference time-multiplexed on those k devices (core's Device
// charges training epochs and inference latency independently, matching
// that assumption). Acquire is all-or-nothing so an admission decision is a
// single atomic capacity check.
type DevicePool struct {
	dev   Device
	total int

	mu   sync.Mutex
	used int
	// peak tracks the high-water mark of concurrently held slots, for
	// fleet-level utilization reporting.
	peak int
}

// NewDevicePool returns a pool of n devices of the given cost model; n < 1
// is clamped to 1 and a zero Device falls back to RTX2080Ti.
func NewDevicePool(dev Device, n int) *DevicePool {
	if n < 1 {
		n = 1
	}
	if dev == (Device{}) {
		dev = RTX2080Ti()
	}
	return &DevicePool{dev: dev, total: n}
}

// Device returns the per-GPU cost model shared by every slot.
func (p *DevicePool) Device() Device { return p.dev }

// Total returns the pool size in GPU slots.
func (p *DevicePool) Total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// InUse returns the currently held slot count.
func (p *DevicePool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Free returns the currently available slot count.
func (p *DevicePool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total - p.used
}

// Peak returns the high-water mark of concurrently held slots.
func (p *DevicePool) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Acquire takes n slots all-or-nothing and reports whether it succeeded.
// n <= 0 always succeeds and takes nothing (a degraded stream holds no
// GPU).
func (p *DevicePool) Acquire(n int) bool {
	if n <= 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used+n > p.total {
		return false
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// Release returns n slots to the pool. Releasing more than is held panics:
// it means an accounting bug in the caller, and silently clamping would
// let a fleet admit streams against capacity that does not exist.
func (p *DevicePool) Release(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.used {
		panic("sr: DevicePool.Release of more slots than acquired")
	}
	p.used -= n
}
