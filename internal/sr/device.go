package sr

import "time"

// Device models GPU execution cost. The maths of training and inference run
// for real on the CPU; the *simulated wall-clock* cost of each operation is
// what experiments account against stream time and GPU-usage budgets
// (Figures 9d, 10d, 15; Table 2). Constants are calibrated so single-GPU
// 1080p-target inference and the paper's 5-second training epochs land in
// the ranges of Table 2 / §6.2.
//
// Charges are by *nominal* MAC count — pixels times taps, independent of
// the weight values. The real kernels honour the same convention: the
// convolution performs every tap multiply even for zero weights (no
// data-dependent skips), so measured CPU cost tracks the virtual clock's
// charges instead of drifting as zero-initialised layers pick up non-zero
// weights during training.
type Device struct {
	// PerInputPixelNS and PerOutputPixelNS model the convolution work at the
	// network's input resolution and the tail/upsample work at the output
	// resolution, in nanoseconds per pixel per GPU.
	PerInputPixelNS  float64
	PerOutputPixelNS float64
	// TransferNS is fixed per-frame CPU<->GPU transfer + launch overhead.
	TransferNS float64
	// StitchNS is the extra gather/stitch overhead per additional GPU when a
	// frame is split for intra-frame parallelism (§6.2).
	StitchNS float64
	// TrainFactor is the cost multiplier of one training sample (forward +
	// backward + optimiser, fp32) relative to one inference of equal size
	// (fp16, §7 "training uses single-precision ... inference with
	// half-precision").
	TrainFactor float64
	// Int8Factor is the compute-cost multiplier of int8-quantized inference
	// relative to the f32 path (dp4a/imma-style tensor throughput; < 1).
	// Zero or out-of-range values fall back to the default 0.45.
	Int8Factor float64
}

// defaultInt8Factor matches the measured advantage of the int8 kernel path
// (BENCH_kernels.json inference_1080p_int8) and typical int8-vs-fp16 GPU
// tensor throughput ratios.
const defaultInt8Factor = 0.45

func (d Device) int8Factor() float64 {
	if d.Int8Factor <= 0 || d.Int8Factor > 1 {
		return defaultInt8Factor
	}
	return d.Int8Factor
}

// RTX2080Ti returns the device model used throughout the evaluation
// (the paper's ingest server uses two GeForce RTX 2080 Ti GPUs).
func RTX2080Ti() Device {
	return Device{
		PerInputPixelNS:  11,
		PerOutputPixelNS: 6.5,
		TransferNS:       3e6,
		StitchNS:         2.5e6,
		TrainFactor:      15,
		Int8Factor:       defaultInt8Factor,
	}
}

// InferenceTime returns the simulated latency of super-resolving one frame
// of inW x inH pixels by the given scale on gpus devices, including
// transfer, per-strip compute (perfectly parallel across strips), and
// stitching. scale 1 models the bilinear-only fallback row of Table 2.
func (d Device) InferenceTime(inW, inH, scale, gpus int) time.Duration {
	return d.inferenceTime(inW, inH, scale, gpus, false)
}

// InferenceTimeQuant is InferenceTime for the int8-quantized inference path:
// the SR compute is scaled by Int8Factor; transfer and stitch are unchanged.
func (d Device) InferenceTimeQuant(inW, inH, scale, gpus int) time.Duration {
	return d.inferenceTime(inW, inH, scale, gpus, true)
}

func (d Device) inferenceTime(inW, inH, scale, gpus int, quant bool) time.Duration {
	if gpus < 1 {
		gpus = 1
	}
	compute := d.PatchComputeNS(inW, inH, scale, quant)
	ns := d.TransferNS + compute/float64(gpus) + float64(gpus-1)*d.StitchNS
	return time.Duration(ns)
}

// PatchComputeNS returns the compute-only cost (no transfer/stitch) of
// super-resolving a wLR x hLR region by the given scale — the unit the
// anytime patch scheduler budgets with. scale 1 models bilinear-only cost.
func (d Device) PatchComputeNS(wLR, hLR, scale int, quant bool) float64 {
	inPix := float64(wLR * hLR)
	outPix := inPix * float64(scale*scale)
	if scale == 1 {
		// Bilinear upsample only: cheap memory-bound pass.
		return outPix * 1.0
	}
	compute := inPix*d.PerInputPixelNS + outPix*d.PerOutputPixelNS
	if quant {
		compute *= d.int8Factor()
	}
	return compute
}

// TrainSampleTime returns the simulated cost of one training sample whose
// HR label is hrPix pixels, on one GPU.
func (d Device) TrainSampleTime(hrPix int, scale int) time.Duration {
	inPix := float64(hrPix) / float64(scale*scale)
	infer := inPix*d.PerInputPixelNS + float64(hrPix)*d.PerOutputPixelNS
	return time.Duration(infer * d.TrainFactor)
}

// EpochTime returns the simulated duration of one training epoch of iters
// steps at the given batch size, sharded across gpus data-parallel devices,
// plus one transfer per step.
func (d Device) EpochTime(iters, batch, hrPix, scale, gpus int) time.Duration {
	if gpus < 1 {
		gpus = 1
	}
	perSample := float64(d.TrainSampleTime(hrPix, scale))
	perStep := perSample*float64(batch)/float64(gpus) + d.TransferNS
	return time.Duration(perStep * float64(iters))
}
