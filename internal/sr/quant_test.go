package sr

import (
	"testing"
	"time"

	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/nn"
	"livenas/internal/telemetry"
	"livenas/internal/vidgen"
)

// trainedModel returns a content-trained model plus its stream source, so
// quantization tests exercise realistic (non-zero, calibrated) weights.
func trainedModel(t *testing.T, seed int64) (*Model, *vidgen.Source) {
	t.Helper()
	const scale = 2
	m := NewModel(scale, 6, 11)
	tr := NewTrainer(m, DefaultTrainConfig(), 5)
	src := vidgen.NewSource(vidgen.JustChatting, 128, 96, seed, 60)
	trainPairs(tr, src, scale, 48, 8)
	for e := 0; e < 6; e++ {
		tr.Epoch()
	}
	return m, src
}

func TestQuantCalibrationFlowsFromTraining(t *testing.T) {
	m, _ := trainedModel(t, 21)
	st := m.calibStats()
	if st[0] <= 0 || st[1] <= 0 {
		t.Fatalf("training did not populate calibration stats: %v", st)
	}
}

// TestQuantE2EPSNRGap pins the acceptance criterion of the int8 path: on
// held-out frames of the stream the model was trained on, quantized
// inference must stay within 0.5 dB of the f32 path.
func TestQuantE2EPSNRGap(t *testing.T) {
	m, src := trainedModel(t, 21)
	q := NewQuantModel(m)
	for _, ts := range []float64{9.7, 11.3, 14.9} {
		hr := src.FrameAt(ts)
		lr := hr.Downscale(2)
		pF := metrics.PSNR(hr, m.SuperResolve(lr))
		pQ := metrics.PSNR(hr, q.SuperResolve(lr))
		if gap := pF - pQ; gap > 0.5 {
			t.Fatalf("t=%.1f: int8 PSNR gap %.3f dB (f32 %.2f, int8 %.2f); want <= 0.5", ts, gap, pF, pQ)
		}
		// Quantized SR must still clearly beat the bilinear skip alone.
		pB := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
		if pQ <= pB {
			t.Fatalf("t=%.1f: int8 SR %.2f dB no better than bilinear %.2f dB", ts, pQ, pB)
		}
	}
}

// TestQuantSuperResolveDeterministicAcrossPools pins the determinism
// contract of strip-parallel quantized inference: byte-identical output for
// any worker count, because the strip decomposition is fixed and the int8
// kernels are exact.
func TestQuantSuperResolveDeterministicAcrossPools(t *testing.T) {
	m, src := trainedModel(t, 33)
	lr := src.FrameAt(7.7).Downscale(2)
	var ref *frame.Frame
	for _, workers := range []int{1, 2, 8} {
		p := nn.NewPool(workers)
		m.SetKernelPool(p)
		got := NewQuantModel(m).SuperResolve(lr)
		p.Close()
		if ref == nil {
			ref = got
			continue
		}
		for i := range got.Pix {
			if got.Pix[i] != ref.Pix[i] {
				t.Fatalf("pool size %d: output differs from pool size 1 at pixel %d", workers, i)
			}
		}
	}
}

// TestQuantRegionDecompositionSeamFree checks that enhancing a frame
// cell-by-cell (the anytime scheduler's unit) is byte-identical to
// enhancing it whole: halos fully cover the receptive field.
func TestQuantRegionDecompositionSeamFree(t *testing.T) {
	m, src := trainedModel(t, 45)
	lr := src.FrameAt(5.1).Downscale(2)
	q := NewQuantModel(m)
	whole := q.SuperResolve(lr)
	cellwise := lr.ResizeBilinear(lr.W*2, lr.H*2)
	for _, c := range anytimeCells(lr) {
		q.EnhanceRegion(lr, c.x0, c.y0, c.x1, c.y1, cellwise)
	}
	for i := range whole.Pix {
		if whole.Pix[i] != cellwise.Pix[i] {
			t.Fatalf("cell-wise enhancement differs from whole-frame at pixel %d", i)
		}
	}
}

func TestQuantUncalibratedModelEqualsBilinear(t *testing.T) {
	// Zero-initialised tail conv => zero residual: the quantized path must
	// reproduce bilinear exactly, even without calibration statistics.
	m := NewModel(2, 4, 1)
	src := vidgen.NewSource(vidgen.Podcast, 64, 48, 3, 10)
	lr := src.FrameAt(1).Downscale(2)
	got := NewQuantModel(m).SuperResolve(lr)
	want := lr.ResizeBilinear(lr.W*2, lr.H*2)
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatal("uncalibrated zero-tail quant model must equal bilinear")
		}
	}
}

func TestProcessorQuantPathAndTelemetry(t *testing.T) {
	m, src := trainedModel(t, 57)
	proc := NewProcessor(m, 2, RTX2080Ti())
	reg := telemetry.New()
	proc.SetTelemetry(reg)
	lr := src.FrameAt(4.4).Downscale(2)

	_, latF := proc.Process(lr)
	proc.EnableQuant(m, 0.5)
	if !proc.QuantActive() {
		t.Fatal("quant not active after EnableQuant")
	}
	got, latQ := proc.Process(lr)
	if latQ >= latF {
		t.Fatalf("int8 device latency %v not below f32 %v", latQ, latF)
	}
	want := NewQuantModel(m).SuperResolve(lr)
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatal("quant Process output differs from QuantModel.SuperResolve")
		}
	}
	if n := reg.Counter("sr_quant_patches").Value(); n != 1 {
		t.Fatalf("sr_quant_patches = %d, want 1", n)
	}
}

// TestQualityGateDisablesOnInjectedError corrupts the quantized model's
// dequant multipliers to simulate catastrophic quantization error and
// checks the online gate falls back to f32, then re-enables (with
// hysteresis) once observations recover.
func TestQualityGateDisablesOnInjectedError(t *testing.T) {
	m, src := trainedModel(t, 69)
	proc := NewProcessor(m, 1, RTX2080Ti())
	reg := telemetry.New()
	proc.SetTelemetry(reg)
	proc.EnableQuant(m, 0.5)

	hr := src.FrameAt(8.8)
	lr := hr.Downscale(2)
	for i := range proc.quant.mDeq {
		proc.quant.mDeq[i] *= 40 // inject quantization error
	}
	proc.ObserveGatePatch(lr, hr)
	if proc.QuantActive() {
		gap, _ := proc.QuantGap()
		t.Fatalf("gate did not disable quant despite %.2f dB gap", gap)
	}
	if reg.Histogram("sr_quant_psnr_gap", nil).Count() == 0 {
		t.Fatal("gate did not record gap observations")
	}

	// A healthy snapshot (as a Sync would install) lets the EWMA recover;
	// the gate must re-enable below the hysteresis threshold.
	proc.quant = NewQuantModel(m)
	for i := 0; i < 100 && !proc.QuantActive(); i++ {
		proc.ObserveGatePatch(lr, hr)
	}
	if !proc.QuantActive() {
		gap, _ := proc.QuantGap()
		t.Fatalf("gate never re-enabled quant; EWMA gap %.3f dB", gap)
	}
}

func TestSyncRefreshesQuantSnapshot(t *testing.T) {
	m, src := trainedModel(t, 81)
	proc := NewProcessor(m, 1, RTX2080Ti())
	proc.EnableQuant(m, 0)
	old := proc.quant
	proc.Sync(m)
	if proc.quant == old {
		t.Fatal("Sync did not rebuild the quantized snapshot")
	}
	lr := src.FrameAt(2.2).Downscale(2)
	got, _ := proc.Process(lr)
	want := NewQuantModel(m).SuperResolve(lr)
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatal("post-Sync quant output differs from fresh snapshot")
		}
	}
}

func TestAnytimeGenerousBudgetMatchesF32(t *testing.T) {
	m, src := trainedModel(t, 93)
	lr := src.FrameAt(6.6).Downscale(2)
	want := m.SuperResolve(lr)
	for _, gpus := range []int{1, 3} {
		proc := NewProcessor(m, gpus, RTX2080Ti())
		reg := telemetry.New()
		proc.SetTelemetry(reg)
		proc.EnableQuant(m, 0.5)
		proc.SetAnytimeBudget(time.Second) // every cell fits at f32
		got, lat := proc.Process(lr)
		if lat <= 0 {
			t.Fatal("latency must be positive")
		}
		for i := range got.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("gpus=%d: generous anytime budget output differs from whole-frame f32 at pixel %d", gpus, i)
			}
		}
		if n := reg.Counter("infer_deadline_miss").Value(); n != 0 {
			t.Fatalf("gpus=%d: spurious deadline miss", gpus)
		}
	}
}

// mixedBudget returns an anytime budget that fits the whole-frame int8
// plan plus roughly 40% of the int8->f32 upgrade headroom on one device:
// some cells upgrade to f32, the rest stay int8, nothing degrades.
func mixedBudget(d Device, lr *frame.Frame) time.Duration {
	cI := d.PatchComputeNS(lr.W, lr.H, 2, true)
	cF := d.PatchComputeNS(lr.W, lr.H, 2, false)
	return time.Duration(d.TransferNS + cI + 0.4*(cF-cI))
}

func TestAnytimeTightBudgetDegradesAndCounts(t *testing.T) {
	m, _ := trainedModel(t, 105)
	// A bigger frame than the training stream, so the scheduler has a real
	// cell grid (4x3) to plan over; the model is fully convolutional.
	src := vidgen.NewSource(vidgen.JustChatting, 384, 288, 105, 60)
	proc := NewProcessor(m, 1, RTX2080Ti())
	reg := telemetry.New()
	proc.SetTelemetry(reg)
	proc.EnableQuant(m, 0.5)

	lr := src.FrameAt(3.3).Downscale(2)
	bil := lr.ResizeBilinear(lr.W*2, lr.H*2)

	// Budget below even the fixed transfer overhead: everything degrades to
	// the bilinear skip and the deadline miss is counted.
	proc.SetAnytimeBudget(time.Nanosecond)
	got, _ := proc.Process(lr)
	for i := range got.Pix {
		if got.Pix[i] != bil.Pix[i] {
			t.Fatal("sub-transfer budget must degrade every cell to bilinear")
		}
	}
	if n := reg.Counter("infer_deadline_miss").Value(); n != 1 {
		t.Fatalf("infer_deadline_miss = %d, want 1", n)
	}

	// Mixed budget: room for the int8 base plan and some f32 upgrades —
	// int8 cells must remain, and the deadline must be met.
	budget := mixedBudget(RTX2080Ti(), lr)
	proc.SetAnytimeBudget(budget)
	got, lat := proc.Process(lr)
	if lat > budget {
		t.Fatalf("anytime latency %v exceeds budget %v", lat, budget)
	}
	nInt8 := reg.Counter("sr_quant_patches").Value()
	if nInt8 == 0 {
		t.Fatal("mixed budget ran no int8 cells")
	}
	if nInt8 == int64(len(anytimeCells(lr))) {
		t.Fatal("mixed budget upgraded no cells to f32")
	}
	if n := reg.Counter("infer_deadline_miss").Value(); n != 1 {
		t.Fatal("mixed budget should meet its deadline")
	}
	enhanced := false
	for i := range got.Pix {
		if got.Pix[i] != bil.Pix[i] {
			enhanced = true
			break
		}
	}
	if !enhanced {
		t.Fatal("mixed budget produced no enhancement over bilinear")
	}
}

// TestAnytimeDeterministicAcrossPools pins that a mixed int8/f32 anytime
// plan produces byte-identical frames regardless of kernel pool size and
// across repeated runs: ranking, budgeting and cell placement are all
// deterministic, and the kernels are exact.
func TestAnytimeDeterministicAcrossPools(t *testing.T) {
	m, _ := trainedModel(t, 117)
	src := vidgen.NewSource(vidgen.Sports, 384, 288, 117, 60)
	lr := src.FrameAt(9.1).Downscale(2)
	d := RTX2080Ti()
	budget := mixedBudget(d, lr)
	var ref *frame.Frame
	for _, workers := range []int{1, 2, 8} {
		p := nn.NewPool(workers)
		defer p.Close()
		m.SetKernelPool(p)
		proc := NewProcessor(m, 2, d)
		proc.EnableQuant(m, 0.5)
		proc.SetAnytimeBudget(budget)
		for rep := 0; rep < 2; rep++ {
			got, _ := proc.Process(lr)
			if ref == nil {
				ref = got
				continue
			}
			for i := range got.Pix {
				if got.Pix[i] != ref.Pix[i] {
					t.Fatalf("pool size %d rep %d: anytime output differs at pixel %d", workers, rep, i)
				}
			}
		}
	}
}
