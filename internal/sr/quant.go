package sr

import (
	"math"

	"livenas/internal/frame"
	"livenas/internal/nn"
)

// QuantModel is an immutable int8-quantized snapshot of a Model, the unit
// of the inference fast path: per-channel symmetric weights, activation
// scales from the model's calibration statistics (the trainer's running
// ReLU maxima), and the requantization folded into each conv's epilogue
// (nn.QuantConv). A QuantModel is rebuilt from the master model at every
// Processor.Sync — quantization is cheap (one pass over ~5k weights) next
// to a single frame's inference.
//
// All methods are safe for concurrent use: the quantized weights are
// read-only after construction, scratch comes from the internally-locked
// arena, and writes go to caller-disjoint output regions. Combined with the
// exactness of the int8 kernels (see internal/nn/gemm_int8.go) this makes
// quantized inference byte-identical for any pool size or strip/patch
// decomposition — pinned by TestQuantSuperResolveDeterministicAcrossPools.
type QuantModel struct {
	Scale int
	chans int
	convs [3]*nn.QuantConv

	// Per-channel fused epilogue coefficients (see nn.QuantConv): requant
	// multiplier + bias(+0.5) for the two hidden layers, dequant multiplier
	// + f32 bias for the tail.
	mReq1, bReq1 []float32
	mReq2, bReq2 []float32
	mDeq, bDeq   []float32

	lut     [256]int16 // pixel → int8 input code (scale 1/127 over [0,1])
	arena   *nn.Arena
	pool    *nn.Pool
	shuffle *nn.PixelShuffle
}

// quantStripRows is the fixed LR strip height of strip-parallel quantized
// inference. Like the f32 engine's row blocks it depends only on the shape,
// never on the pool size, so the strip partition — and the output — is
// reproducible everywhere.
const quantStripRows = 96

// NewQuantModel quantizes m's current weights using its calibration
// statistics. Uncalibrated models (zero stats) fall back to unit activation
// maxima — workable scales for residual SR where hidden activations are
// O(1), refined as soon as calibration data arrives.
func NewQuantModel(m *Model) *QuantModel {
	m.mu.RLock()
	defer m.mu.RUnlock()
	q := &QuantModel{
		Scale:   m.Scale,
		chans:   m.Channels,
		arena:   nn.NewArena(),
		pool:    m.pool,
		shuffle: &nn.PixelShuffle{S: m.Scale},
	}
	q.shuffle.SetKernelContext(q.arena, nil)
	for i, li := range [3]int{0, 2, 4} {
		q.convs[i] = nn.QuantizeConv2D(m.layers[li].(*nn.Conv2D))
	}

	const xs0 = 1.0 / 127 // input scale: pixels/255 ∈ [0,1]
	act := m.calibMax
	for i := range act {
		if act[i] <= 0 {
			act[i] = 1
		}
	}
	xs1 := act[0] / 127
	xs2 := act[1] / 127

	mk := func(c *nn.QuantConv, sx, sxNext float32) (mv, bv []float32) {
		mv = make([]float32, c.OutC)
		bv = make([]float32, c.OutC)
		for oc := range mv {
			mv[oc] = c.ScaleW[oc] * sx / sxNext
			bv[oc] = c.Bias[oc]/sxNext + 0.5
		}
		return
	}
	q.mReq1, q.bReq1 = mk(q.convs[0], xs0, xs1)
	q.mReq2, q.bReq2 = mk(q.convs[1], xs1, xs2)
	q.mDeq = make([]float32, q.convs[2].OutC)
	for oc := range q.mDeq {
		q.mDeq[oc] = q.convs[2].ScaleW[oc] * xs2
	}
	q.bDeq = q.convs[2].Bias

	for v := range q.lut {
		q.lut[v] = int16(math.Round(float64(v) * 127 / 255)) //livenas:allow hot-loop-precision one-time 256-entry LUT construction, not a per-pixel loop
	}
	return q
}

// SuperResolve upscales lr by the model's scale: bilinear skip plus the
// int8 residual, computed strip-parallel on the kernel pool with a fixed
// strip decomposition (quantStripRows) and per-strip halos, so the output
// is byte-identical at any pool size.
func (q *QuantModel) SuperResolve(lr *frame.Frame) *frame.Frame {
	s := q.Scale
	up := lr.ResizeBilinear(lr.W*s, lr.H*s)
	n := (lr.H + quantStripRows - 1) / quantStripRows
	q.pool.Run(n, func(i int) {
		y0 := i * quantStripRows
		y1 := min(y0+quantStripRows, lr.H)
		q.EnhanceRegion(lr, 0, y0, lr.W, y1, up)
	})
	return up
}

// EnhanceRegion runs quantized SR over the LR cell [x0,x1)×[y0,y1) of lr
// and adds the residual into the corresponding scaled region of out, which
// must already hold the bilinear upsample of lr (the skip connection). The
// cell is expanded by the network's receptive-field halo before inference
// and the halo is cropped away again, so region boundaries are invisible:
// enhancing a frame cell-by-cell equals enhancing it whole. Safe to call
// concurrently for disjoint cells.
func (q *QuantModel) EnhanceRegion(lr *frame.Frame, x0, y0, x1, y1 int, out *frame.Frame) {
	s := q.Scale
	left, top := max(0, x0-haloLR), max(0, y0-haloLR)
	right, bot := min(lr.W, x1+haloLR), min(lr.H, y1+haloLR)
	cw, ch := right-left, bot-top
	a := q.arena

	// Quantize the input cell through the pixel LUT.
	qx := a.GetBufI16(cw * ch)
	for y := top; y < bot; y++ {
		src := lr.Pix[y*lr.W+left : y*lr.W+right]
		dst := qx[(y-top)*cw : (y-top)*cw+cw]
		for i, v := range src {
			dst[i] = q.lut[v]
		}
	}

	h1 := a.GetBufI16(q.chans * cw * ch)
	q.convs[0].ForwardRequant(a, qx, ch, cw, q.mReq1, q.bReq1, h1)
	a.PutBufI16(qx)
	h2 := a.GetBufI16(q.chans * cw * ch)
	q.convs[1].ForwardRequant(a, h1, ch, cw, q.mReq2, q.bReq2, h2)
	a.PutBufI16(h1)
	res := a.Get(s*s, ch, cw)
	q.convs[2].ForwardDequant(a, h2, ch, cw, q.mDeq, q.bDeq, res.Data)
	a.PutBufI16(h2)
	hi := q.shuffle.Forward(res) // (1, ch*s, cw*s) residual plane
	a.Put(res)

	// Residual add over the target region only (halo rows/cols drop away).
	for y := y0 * s; y < y1*s; y++ {
		srow := hi.Data[(y-top*s)*hi.W:]
		orow := out.Pix[y*out.W:]
		for x := x0 * s; x < x1*s; x++ {
			v := float32(orow[x]) + srow[x-left*s]*255
			switch {
			case v <= 0:
				orow[x] = 0
			case v >= 255:
				orow[x] = 255
			default:
				orow[x] = uint8(v + 0.5)
			}
		}
	}
	a.Put(hi)
}

// ArenaStats reports the quantized path's arena free-list hits and misses.
func (q *QuantModel) ArenaStats() (hits, misses int64) { return q.arena.Stats() }
