package sr

import (
	"math"
	"testing"
	"time"

	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/vidgen"
)

func TestUntrainedModelEqualsBilinear(t *testing.T) {
	m := NewModel(2, 4, 1)
	src := vidgen.NewSource(vidgen.JustChatting, 64, 48, 3, 10)
	lr := src.FrameAt(1).Downscale(2)
	got := m.SuperResolve(lr)
	want := lr.ResizeBilinear(lr.W*2, lr.H*2)
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatal("zero-initialised model must reproduce bilinear upsampling")
		}
	}
}

func TestModelPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(0, 4, 1)
}

func TestCloneAndCopyWeights(t *testing.T) {
	a := NewModel(2, 4, 7)
	b := a.Clone()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatal("clone weights differ")
			}
		}
	}
	pa[0].W[0] += 1
	if pb[0].W[0] == pa[0].W[0] {
		t.Fatal("clone shares weight storage")
	}
	b.CopyWeightsFrom(a)
	if pb[0].W[0] != pa[0].W[0] {
		t.Fatal("CopyWeightsFrom did not copy")
	}
}

func TestTensorFrameRoundTrip(t *testing.T) {
	src := vidgen.NewSource(vidgen.Sports, 32, 32, 5, 10)
	f := src.FrameAt(0.5)
	g := FromTensor(ToTensor(f))
	for i := range f.Pix {
		if d := int(f.Pix[i]) - int(g.Pix[i]); d > 1 || d < -1 {
			t.Fatalf("round trip error %d at %d", d, i)
		}
	}
}

// trainPairs builds (lr, hr) pairs from a stream's frames, rotating through
// the patch grid so the training set covers the whole frame (as LiveNAS's
// patch sampler does — spatial diversity is what makes the gain generalise).
func trainPairs(tr *Trainer, src *vidgen.Source, scale, hrSize, n int) {
	var cells []frame.GridCell
	for i := 0; i < n; i++ {
		f := src.FrameAt(float64(i) * 0.5)
		if cells == nil {
			cells = frame.Grid(f.W, f.H, hrSize)
		}
		for j := 0; j < 2; j++ {
			cell := cells[(2*i+j)%len(cells)]
			hr := frame.Patch(f, cell, hrSize)
			tr.AddSample(hr.Downscale(scale), hr)
		}
	}
}

func onlineGain(t *testing.T, gpus int) float64 {
	t.Helper()
	const scale = 2
	m := NewModel(scale, 6, 11)
	cfg := DefaultTrainConfig()
	cfg.GPUs = gpus
	tr := NewTrainer(m, cfg, 5)
	src := vidgen.NewSource(vidgen.JustChatting, 128, 96, 21, 60)
	trainPairs(tr, src, scale, 48, 8)
	for e := 0; e < 6; e++ {
		tr.Epoch()
	}
	// Evaluate on a *later* frame of the same stream.
	hr := src.FrameAt(9.7)
	lr := hr.Downscale(scale)
	bil := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
	srp := metrics.PSNR(hr, m.SuperResolve(lr))
	return srp - bil
}

func TestOnlineTrainingBeatsBilinear(t *testing.T) {
	gain := onlineGain(t, 1)
	if gain < 0.3 {
		t.Fatalf("online gain %.2f dB; want >= 0.3 dB over bilinear", gain)
	}
}

func TestMultiGPUTrainingAlsoLearns(t *testing.T) {
	gain := onlineGain(t, 3)
	if gain < 0.3 {
		t.Fatalf("3-GPU online gain %.2f dB; want >= 0.3", gain)
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	m := NewModel(2, 6, 3)
	tr := NewTrainer(m, DefaultTrainConfig(), 9)
	src := vidgen.NewSource(vidgen.Podcast, 96, 96, 13, 60)
	trainPairs(tr, src, 2, 48, 6)
	first := tr.Epoch()
	var last float64
	for e := 0; e < 5; e++ {
		last = tr.Epoch()
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestEpochOnEmptyDataset(t *testing.T) {
	m := NewModel(2, 4, 1)
	tr := NewTrainer(m, DefaultTrainConfig(), 1)
	if l := tr.Epoch(); l != 0 {
		t.Fatalf("empty epoch loss %v", l)
	}
}

func TestAddSamplePanicsOnMismatch(t *testing.T) {
	m := NewModel(2, 4, 1)
	tr := NewTrainer(m, DefaultTrainConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.AddSample(frame.New(10, 10), frame.New(30, 30))
}

func TestSampleRingBuffer(t *testing.T) {
	m := NewModel(2, 4, 1)
	cfg := DefaultTrainConfig()
	cfg.MaxSamples = 5
	tr := NewTrainer(m, cfg, 1)
	for i := 0; i < 9; i++ {
		hr := frame.New(8, 8)
		tr.AddSample(hr.Downscale(2), hr)
	}
	if tr.SampleCount() != 5 {
		t.Fatalf("ring buffer holds %d, want 5", tr.SampleCount())
	}
}

func TestRecencySamplingFavoursRecent(t *testing.T) {
	m := NewModel(2, 4, 1)
	cfg := DefaultTrainConfig()
	cfg.RecencyK = 10
	cfg.RecencyWeight = 4
	tr := NewTrainer(m, cfg, 77)
	for i := 0; i < 100; i++ {
		hr := frame.New(8, 8)
		tr.AddSample(hr.Downscale(2), hr)
	}
	recent := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		if tr.pick() >= 90 {
			recent++
		}
	}
	// Expected: 40/(90+40) ≈ 0.31 of draws from the last 10 samples,
	// vs 0.10 under uniform sampling.
	fracpart := float64(recent) / draws
	if fracpart < 0.2 || fracpart > 0.45 {
		t.Fatalf("recent fraction %.2f outside [0.2,0.45]", fracpart)
	}
}

func TestContentAwareBeatsGeneric(t *testing.T) {
	// The key premise of content-aware SR (§3): a model trained on the
	// stream itself beats a model trained on a generic dataset.
	const scale = 2
	stream := vidgen.NewSource(vidgen.LeagueOfLegends, 128, 96, 31, 60)

	online := NewModel(scale, 6, 1)
	trOn := NewTrainer(online, DefaultTrainConfig(), 2)
	trainPairs(trOn, stream, scale, 48, 8)
	for e := 0; e < 6; e++ {
		trOn.Epoch()
	}

	generic := NewModel(scale, 6, 1)
	PretrainOnDataset(generic, vidgen.GenericDataset(8, 48, 99), 6, 48, DefaultTrainConfig(), 3)

	hr := stream.FrameAt(11.3)
	lr := hr.Downscale(scale)
	pOn := metrics.PSNR(hr, online.SuperResolve(lr))
	pGen := metrics.PSNR(hr, generic.SuperResolve(lr))
	if pOn <= pGen {
		t.Fatalf("online %.2f dB should beat generic %.2f dB on own content", pOn, pGen)
	}
}

func TestProcessorMatchesSingleModel(t *testing.T) {
	m := NewModel(2, 6, 5)
	tr := NewTrainer(m, DefaultTrainConfig(), 5)
	src := vidgen.NewSource(vidgen.Sports, 96, 96, 41, 60)
	trainPairs(tr, src, 2, 48, 4)
	tr.Epoch()

	proc := NewProcessor(m, 3, RTX2080Ti())
	lr := src.FrameAt(3.3).Downscale(2)
	got, lat := proc.Process(lr)
	want := m.SuperResolve(lr)
	if lat <= 0 {
		t.Fatal("latency must be positive")
	}
	diff := 0
	for i := range got.Pix {
		if got.Pix[i] != want.Pix[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Fatalf("strip-split output differs from whole-frame output at %d pixels", diff)
	}
}

func TestProcessorSyncPicksUpTraining(t *testing.T) {
	m := NewModel(2, 6, 5)
	proc := NewProcessor(m, 1, RTX2080Ti())
	src := vidgen.NewSource(vidgen.FoodCooking, 96, 96, 43, 60)
	lr := src.FrameAt(1).Downscale(2)
	before, _ := proc.Process(lr)

	tr := NewTrainer(m, DefaultTrainConfig(), 5)
	trainPairs(tr, src, 2, 48, 4)
	for e := 0; e < 4; e++ {
		tr.Epoch()
	}
	stale, _ := proc.Process(lr)
	for i := range before.Pix {
		if before.Pix[i] != stale.Pix[i] {
			t.Fatal("processor picked up weights without Sync")
		}
	}
	proc.Sync(m)
	after, _ := proc.Process(lr)
	same := true
	for i := range before.Pix {
		if before.Pix[i] != after.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Sync did not refresh processor weights")
	}
}

func TestDeviceInferenceTimes(t *testing.T) {
	d := RTX2080Ti()
	// Table 2 shape: all single-GPU 1080p-target configs land in ~15-35 ms,
	// bilinear-only 720p->1080p is much cheaper, and 4K on 3 GPUs is
	// real-time (< 33 ms).
	t270 := d.InferenceTime(480, 270, 4, 1)
	t360 := d.InferenceTime(640, 360, 3, 1)
	t540 := d.InferenceTime(960, 540, 2, 1)
	tBil := d.InferenceTime(1280, 720, 1, 1)
	t4k3 := d.InferenceTime(1280, 720, 3, 3)
	for name, v := range map[string]time.Duration{"270p": t270, "360p": t360, "540p": t540} {
		if v < 10*time.Millisecond || v > 40*time.Millisecond {
			t.Fatalf("%s inference %v outside Table 2 range", name, v)
		}
	}
	if tBil >= t270 {
		t.Fatalf("bilinear %v should be cheaper than SR %v", tBil, t270)
	}
	if t4k3 > 33*time.Millisecond {
		t.Fatalf("3-GPU 720p->4K %v not real-time", t4k3)
	}
	// Multi-GPU must beat single-GPU for 4K.
	if single := d.InferenceTime(1280, 720, 3, 1); t4k3 >= single {
		t.Fatalf("3 GPUs (%v) not faster than 1 (%v)", t4k3, single)
	}
}

func TestDeviceEpochTime(t *testing.T) {
	d := RTX2080Ti()
	// Paper-scale epoch: 50 iters x batch 64 on 120x120 patches should take
	// seconds (the paper uses 5 s epochs).
	e1 := d.EpochTime(50, 64, 120*120, 3, 1)
	if e1 < time.Second || e1 > 20*time.Second {
		t.Fatalf("epoch time %v outside plausible range", e1)
	}
	e3 := d.EpochTime(50, 64, 120*120, 3, 3)
	if e3 >= e1 {
		t.Fatal("3-GPU training not faster")
	}
	if math.Abs(float64(e1)/float64(e3)-3) > 1 {
		t.Fatalf("3-GPU speedup %.1fx far from linear", float64(e1)/float64(e3))
	}
}

func TestPersistentLearningImproves(t *testing.T) {
	// Persistent online learning (§6.1): starting session 2 from session 1's
	// model should beat starting from scratch, early in the session.
	const scale = 2
	prev := vidgen.NewSource(vidgen.WorldOfWarcraft, 128, 96, 51, 60)
	cur := vidgen.NewSource(vidgen.WorldOfWarcraft, 128, 96, 52, 60)

	persistent := NewModel(scale, 6, 1)
	trP := NewTrainer(persistent, DefaultTrainConfig(), 2)
	trainPairs(trP, prev, scale, 48, 8)
	for e := 0; e < 6; e++ {
		trP.Epoch()
	}
	// Short warm-up on current session for both models.
	fresh := NewModel(scale, 6, 1)
	trF := NewTrainer(fresh, DefaultTrainConfig(), 2)
	trP2 := NewTrainer(persistent, DefaultTrainConfig(), 2)
	trainPairs(trF, cur, scale, 48, 2)
	trainPairs(trP2, cur, scale, 48, 2)
	trF.Epoch()
	trP2.Epoch()

	hr := cur.FrameAt(6.1)
	lr := hr.Downscale(scale)
	pF := metrics.PSNR(hr, fresh.SuperResolve(lr))
	pP := metrics.PSNR(hr, persistent.SuperResolve(lr))
	if pP <= pF-0.05 {
		t.Fatalf("persistent %.2f dB should be >= fresh %.2f dB early in session", pP, pF)
	}
}
