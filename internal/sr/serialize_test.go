package sr

import (
	"bytes"
	"errors"
	"testing"

	"livenas/internal/metrics"
	"livenas/internal/vidgen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewModel(3, 6, 17)
	// Give it distinctive weights via a little training.
	tr := NewTrainer(m, DefaultTrainConfig(), 5)
	src := vidgen.NewSource(vidgen.Sports, 96, 96, 3, 60)
	trainPairs(tr, src, 3, 48, 4)
	tr.Epoch()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != 3 || got.Channels != 6 {
		t.Fatalf("geometry %d/%d", got.Scale, got.Channels)
	}
	// Outputs must be bit-identical.
	lr := src.FrameAt(2).Downscale(3)
	a := m.SuperResolve(lr)
	b := got.SuperResolve(lr)
	if metrics.PSNR(a, b) != metrics.PSNRCap {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("err %v", err)
	}
	if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("empty err %v", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	m := NewModel(2, 4, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 16, len(data) - 3} {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, ErrBadModelFile) {
			t.Fatalf("cut %d: err %v", cut, err)
		}
	}
}

func TestLoadRejectsBadGeometry(t *testing.T) {
	// Valid header but absurd scale.
	buf := []byte{
		0x4c, 0x4e, 0x41, 0x53, // magic
		0, 0, 0, 1, // version
		0, 0, 0, 99, // scale 99
		0, 0, 0, 6, // channels
	}
	if _, err := Load(bytes.NewReader(buf)); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("err %v", err)
	}
}
