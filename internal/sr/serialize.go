package sr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Model serialization supports persistent online learning (§6.1 "operators
// can choose to keep and reuse the result of online learning for future
// streams for popular streamers"): the media server saves the model when a
// stream ends and warm-starts the streamer's next session from it.
//
// The format is a small versioned binary header followed by the raw float32
// parameters in Params() order.

// serializeMagic identifies a LiveNAS-Go model file.
const serializeMagic = 0x4c4e4153 // "LNAS"

const serializeVersion = 1

// ErrBadModelFile reports a corrupt or incompatible model file.
var ErrBadModelFile = errors.New("sr: bad model file")

// Save writes the model's architecture and weights to w. It read-locks the
// model, so a snapshot taken mid-training is step-consistent.
func (m *Model) Save(w io.Writer) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bw := bufio.NewWriter(w)
	hdr := []uint32{serializeMagic, serializeVersion, uint32(m.Scale), uint32(m.Channels)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for _, p := range m.params {
		if err := binary.Write(bw, binary.BigEndian, uint32(len(p.W))); err != nil {
			return err
		}
		for _, f := range p.W {
			if err := binary.Write(bw, binary.BigEndian, math.Float32bits(f)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var magic, version, scale, channels uint32
	for _, dst := range []*uint32{&magic, &version, &scale, &channels} {
		if err := binary.Read(br, binary.BigEndian, dst); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadModelFile)
		}
	}
	if magic != serializeMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrBadModelFile, magic)
	}
	if version != serializeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModelFile, version)
	}
	if scale < 1 || scale > 8 || channels < 1 || channels > 1024 {
		return nil, fmt.Errorf("%w: implausible geometry x%d/%dch", ErrBadModelFile, scale, channels)
	}
	m := NewModel(int(scale), int(channels), 0)
	for pi, p := range m.params {
		var n uint32
		if err := binary.Read(br, binary.BigEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: truncated param %d", ErrBadModelFile, pi)
		}
		if int(n) != len(p.W) {
			return nil, fmt.Errorf("%w: param %d has %d weights, want %d", ErrBadModelFile, pi, n, len(p.W))
		}
		for i := range p.W {
			var bits uint32
			if err := binary.Read(br, binary.BigEndian, &bits); err != nil {
				return nil, fmt.Errorf("%w: truncated weights", ErrBadModelFile)
			}
			p.W[i] = math.Float32frombits(bits)
		}
	}
	return m, nil
}
