package sr

import (
	"math/rand"

	"livenas/internal/frame"
	"livenas/internal/nn"
	"livenas/internal/telemetry"
)

// TrainConfig controls online training. Defaults follow the paper's settings
// (§7: 50 iterations/epoch, minibatch 64, lr 1e-4, K=150 recent patches at
// 4x weight) scaled to this model's CPU-sized capacity where noted.
type TrainConfig struct {
	// ItersPerEpoch is the number of optimiser steps per training epoch.
	ItersPerEpoch int
	// Batch is the minibatch size per step.
	Batch int
	// LR is the Adam learning rate.
	LR float64
	// RecencyK is how many of the most recent samples get boosted sampling
	// weight (§6.2 "gives a larger weight to recent K patches").
	RecencyK int
	// RecencyWeight is the sampling weight multiplier for recent samples.
	RecencyWeight float64
	// MaxSamples caps the retained training set (ring buffer); 0 = 2000.
	MaxSamples int
	// GPUs is the number of data-parallel training devices (>=1).
	GPUs int
}

// DefaultTrainConfig returns paper-equivalent settings scaled to this model:
// fewer, larger-learning-rate steps because the network is ~1000x smaller
// than NAS "ultra-high" and converges proportionally faster.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		ItersPerEpoch: 16,
		Batch:         8,
		LR:            1e-2,
		RecencyK:      150,
		RecencyWeight: 4,
		MaxSamples:    2000,
		GPUs:          1,
	}
}

func (c TrainConfig) withDefaults() TrainConfig {
	d := DefaultTrainConfig()
	if c.ItersPerEpoch <= 0 {
		c.ItersPerEpoch = d.ItersPerEpoch
	}
	if c.Batch <= 0 {
		c.Batch = d.Batch
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.RecencyK <= 0 {
		c.RecencyK = d.RecencyK
	}
	if c.RecencyWeight <= 0 {
		c.RecencyWeight = d.RecencyWeight
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = d.MaxSamples
	}
	if c.GPUs <= 0 {
		c.GPUs = 1
	}
	return c
}

// Sample is one training example: a low-resolution input patch and its
// high-resolution ground-truth label, plus the residual target the model
// actually regresses (hr - bilinear(lr), precomputed once).
type Sample struct {
	LR  *nn.Tensor
	Res *nn.Tensor // residual target at HR resolution, normalised
	Seq int        // arrival sequence number (recency)
}

// Trainer performs online training of a Model on an evolving patch dataset.
// A Trainer's own methods are single-goroutine (the ingest server drives it
// from its event loop), but the trained Model may be shared: each optimiser
// step holds the model's write lock, so concurrent Processor.Sync and
// SuperResolve callers on the same model are safe (see race_test.go).
type Trainer struct {
	Model *Model
	cfg   TrainConfig
	opt   *nn.Adam
	data  []Sample
	seq   int
	rng   *rand.Rand

	replicas []*Model // data-parallel training replicas (cfg.GPUs > 1)

	// Telemetry handles (nil until SetTelemetry; nil-safe).
	mEpochs  *telemetry.Counter
	mSteps   *telemetry.Counter
	mSamples *telemetry.Counter
	mLoss    *telemetry.Gauge
}

// NewTrainer creates a trainer that updates model in place.
func NewTrainer(model *Model, cfg TrainConfig, seed int64) *Trainer {
	cfg = cfg.withDefaults()
	t := &Trainer{
		Model: model,
		cfg:   cfg,
		opt:   nn.NewAdam(cfg.LR),
		rng:   rand.New(rand.NewSource(seed)),
	}
	for i := 1; i < cfg.GPUs; i++ {
		t.replicas = append(t.replicas, model.Clone())
	}
	return t
}

// Config returns the effective training configuration.
func (t *Trainer) Config() TrainConfig { return t.cfg }

// SetTelemetry registers the trainer's metrics on reg: epochs and optimiser
// steps run (sr_train_epochs, sr_train_steps), samples admitted to the
// training set (sr_train_samples_added), and the latest epoch's mean
// minibatch loss (sr_train_loss). Handles are held; the per-step cost is
// lock-free atomics only.
func (t *Trainer) SetTelemetry(reg *telemetry.Registry) {
	t.mEpochs = reg.Counter("sr_train_epochs")
	t.mSteps = reg.Counter("sr_train_steps")
	t.mSamples = reg.Counter("sr_train_samples_added")
	t.mLoss = reg.Gauge("sr_train_loss")
}

// SampleCount reports the current training-set size.
func (t *Trainer) SampleCount() int { return len(t.data) }

// AddSample registers a new (lr, hr) patch pair. hr must be exactly
// scale x the lr dimensions.
func (t *Trainer) AddSample(lr, hr *frame.Frame) {
	s := t.Model.Scale
	if hr.W != lr.W*s || hr.H != lr.H*s {
		panic("sr: sample dimensions do not match model scale")
	}
	up := lr.ResizeBilinear(hr.W, hr.H)
	res := nn.NewTensor(1, hr.H, hr.W)
	for i := range res.Data {
		res.Data[i] = (float32(hr.Pix[i]) - float32(up.Pix[i])) / 255
	}
	t.data = append(t.data, Sample{LR: ToTensor(lr), Res: res, Seq: t.seq})
	t.seq++
	t.mSamples.Inc()
	if len(t.data) > t.cfg.MaxSamples {
		t.data = t.data[len(t.data)-t.cfg.MaxSamples:]
	}
}

// pick draws one sample index with recency weighting: the most recent
// RecencyK samples are RecencyWeight times as likely per sample as older
// ones (§6.2).
func (t *Trainer) pick() int {
	n := len(t.data)
	k := t.cfg.RecencyK
	if k > n {
		k = n
	}
	old := n - k
	wOld := float64(old)
	wNew := float64(k) * t.cfg.RecencyWeight
	if t.rng.Float64()*(wOld+wNew) < wOld {
		return t.rng.Intn(old)
	}
	return old + t.rng.Intn(k)
}

// Epoch runs one training epoch (ItersPerEpoch optimiser steps) and returns
// the mean minibatch loss. With GPUs > 1, each step shards its minibatch
// across replicas, weights each shard's gradients by the recency of its
// patches (more recent shard = larger weight, §6.2 "give a larger weight to
// the gradient computed with more recent patches"), and synchronises
// replica weights after the aggregated update.
func (t *Trainer) Epoch() float64 {
	if len(t.data) == 0 {
		return 0
	}
	var lossSum float64
	for it := 0; it < t.cfg.ItersPerEpoch; it++ {
		lossSum += t.step()
	}
	mean := lossSum / float64(t.cfg.ItersPerEpoch)
	t.mEpochs.Inc()
	t.mLoss.Set(mean)
	return mean
}

// step runs one minibatch update and returns its mean loss.
//
//livenas:allow context-propagation bounded wait: done is buffered to g and each shard goroutine sends exactly once, so the sends and the g receives cannot block indefinitely
func (t *Trainer) step() float64 {
	t.mSteps.Inc()
	models := append([]*Model{t.Model}, t.replicas...)
	g := len(models)
	perShard := (t.cfg.Batch + g - 1) / g

	// Draw the whole minibatch, then order it by recency so shard g-1 holds
	// the most recent patches and receives the largest gradient weight.
	idx := make([]int, 0, perShard*g)
	for len(idx) < perShard*g {
		idx = append(idx, t.pick())
	}
	sortBySeq(idx, t.data)

	// The shard phase runs forward/backward on the master (models[0]) and
	// the update phase writes its weights; hold the master's write lock for
	// the whole step so concurrent Processor.Sync / SuperResolve callers on
	// the shared model always observe step-consistent weights (§7 "the
	// inference process is synchronized").
	t.Model.mu.Lock()
	defer t.Model.mu.Unlock()

	type shardResult struct {
		loss   float64
		weight float64
	}
	results := make([]shardResult, g)
	done := make(chan int, g)
	for si := 0; si < g; si++ {
		si := si
		go func() {
			m := models[si]
			m.zeroGrads()
			loss := t.shardGrad(m, idx[si*perShard:(si+1)*perShard])
			// Recency weight: linear ramp so the shard with the newest
			// patches counts ~2x the oldest shard.
			results[si] = shardResult{loss: loss, weight: 1 + float64(si)/float64(g)}
			done <- si
		}()
	}
	for i := 0; i < g; i++ {
		<-done
	}

	// Aggregate replica gradients into the master with shard weights. The
	// per-element arithmetic stays in float32: the float64 shard weights
	// are folded into float32 scale factors once, outside the loops, so the
	// gradient loop does no cross-precision conversion.
	if g > 1 {
		var wSum float64
		for _, r := range results {
			wSum += r.weight
		}
		scale := make([]float32, g)
		for si, r := range results {
			scale[si] = float32(r.weight * float64(g) / wSum) //livenas:allow hot-loop-precision the fold itself; runs g≈2-4 times per step
		}
		grads := make([][]nn.Param, g)
		for si, m := range models {
			grads[si] = m.Params()
		}
		master := grads[0]
		for pi := range master {
			dst := master[pi].Grad
			for j := range dst {
				var acc float32
				for si := range grads {
					acc += grads[si][pi].Grad[j] * scale[si]
				}
				dst[j] = acc
			}
		}
	}
	// Normalise gradient by total sample count (losses were summed).
	total := float64(perShard * g)
	tot := float32(total)
	for _, p := range t.Model.Params() {
		for j := range p.Grad {
			p.Grad[j] /= tot
		}
	}
	t.opt.Step(t.Model.Params())
	for _, r := range t.replicas {
		// Replicas are trainer-private and the master lock is already
		// held, so copy without re-locking.
		r.copyWeights(t.Model)
	}

	var loss float64
	for _, r := range results {
		loss += r.loss
	}
	return loss / total
}

// shardGrad accumulates the gradient of the samples idx into m's gradient
// accumulators and returns the summed loss.
//
// On the kernel engine each sample gets a private gradient context
// (weight-sharing layer clones) so all samples of the shard run
// concurrently on the kernel pool; the private gradients are then folded
// into the model in ascending sample order. The fold order — and therefore
// the result — is fixed by the shard contents alone, never by the pool
// size. The scalar reference path keeps the seed's sequential
// accumulate-in-place loop, which the tracked benchmarks baseline against.
func (t *Trainer) shardGrad(m *Model, idx []int) float64 {
	if nn.RefKernels() {
		var loss float64
		for _, di := range idx {
			s := t.data[di]
			out := m.forward(s.LR)
			l, grad := nn.MSELoss(out, s.Res)
			loss += l
			m.backward(grad)
			m.releaseLive()
		}
		return loss
	}
	ctxs := m.gradContexts(len(idx))
	losses := make([]float64, len(idx))
	m.pool.Run(len(idx), func(k int) {
		ctxs[k].zeroGrads()
		losses[k] = ctxs[k].sampleGrad(t.data[idx[k]])
	})
	var loss float64
	mp := m.Params()
	for k := range idx {
		// Every training sample doubles as an int8 activation-scale
		// calibration probe (the caller holds the master's write lock).
		m.foldCalib(ctxs[k].actMax)
		for pi := range mp {
			dst := mp[pi].Grad
			for j, v := range ctxs[k].params[pi].Grad {
				dst[j] += v
			}
		}
		loss += losses[k]
	}
	return loss
}

// sortBySeq orders sample indices by ascending arrival sequence (insertion
// sort; minibatches are small).
func sortBySeq(idx []int, data []Sample) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && data[idx[j]].Seq < data[idx[j-1]].Seq; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// PretrainOnDataset trains a model on a fixed image set (the generic-SR and
// pre-trained baselines of §8.1): each image is split into aligned LR/HR
// patch pairs of hrSize pixels by box-downscaling, then trained for the
// given epochs. hrSize is clamped to fit the images and snapped to a
// multiple of the model's scale.
func PretrainOnDataset(model *Model, images []*frame.Frame, epochs, hrSize int, cfg TrainConfig, seed int64) {
	if len(images) == 0 {
		return
	}
	tr := NewTrainer(model, cfg, seed)
	s := model.Scale
	for _, img := range images {
		size := hrSize
		if size > img.W {
			size = img.W
		}
		if size > img.H {
			size = img.H
		}
		size = size / s * s
		if size < s {
			continue
		}
		for _, cell := range frame.Grid(img.W, img.H, size) {
			hr := frame.Patch(img, cell, size)
			tr.AddSample(hr.Downscale(s), hr)
		}
	}
	for e := 0; e < epochs; e++ {
		tr.Epoch()
	}
}
