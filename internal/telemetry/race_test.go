package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistryStress hammers one registry from many goroutines —
// metric writes, event emission, registration of new handles, snapshots,
// and enable/disable flips — all at once. It is meaningful under `go test
// -race ./internal/telemetry` (part of the scripts/check.sh and ci.sh
// concurrency tier); without -race it still asserts the totals that must
// be exact under the atomic API.
func TestConcurrentRegistryStress(t *testing.T) {
	r := New()
	r.SetSink(io.Discard)
	c := r.Counter("shared_counter")
	h := r.Histogram("shared_hist", ExpBuckets(1, 4, 8))
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			gauge := r.Gauge("per_writer_gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Set(float64(i))
				h.Observe(float64(i % 1000))
				if i%64 == 0 {
					r.Emit(time.Duration(g*perG+i), "stress", Num("i", float64(i)))
				}
				if i%128 == 0 {
					r.Counter("late_registration").Inc()
				}
			}
		}()
	}
	// Concurrent readers: snapshots and event scans while writers run.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				s := r.Snapshot()
				if s.Counters["shared_counter"] < 0 {
					t.Error("negative counter in snapshot")
				}
				_ = r.EventsByType("stress")
				_ = h.Quantile(0.99)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := c.Value(); got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
	if err := r.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
}

// TestConcurrentEnableFlip races the master switch against writers; totals
// cannot be asserted (flips drop an unknowable number of increments) but
// the detector must stay quiet and the final re-enabled state must record.
func TestConcurrentEnableFlip(t *testing.T) {
	r := New()
	c := r.Counter("c")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.SetEnabled(i%2 == 0)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Inc()
				r.Emit(0, "flip")
			}
		}()
	}
	time.Sleep(time.Millisecond)
	close(stop)
	wg.Wait()
	r.SetEnabled(true)
	before := c.Value()
	c.Inc()
	if c.Value() != before+1 {
		t.Fatal("counter dead after enable flips")
	}
}
