// Package telemetry is the runtime accounting substrate for LiveNAS's
// control loops: a stdlib-only, race-safe registry of counters, gauges and
// fixed-bucket histograms, plus a structured JSONL event trace (trace.go)
// and an end-of-run summary digest (summary.go).
//
// The paper's value lives in feedback loops — the client scheduler's
// bandwidth split (§5.1) and the server's content-adaptive trainer
// (Algorithm 1) — and this package is how the repo records what those loops
// actually did in a run, machine-readably, so experiments can be compared
// and CI can gate on them.
//
// Overhead contract (pinned by telemetry_test.go):
//
//   - Instrumentation is compiled in, never behind build tags. A *disabled*
//     registry costs one atomic load per counter/gauge/histogram operation
//     and per emitted event, with zero allocations.
//   - Enabled Counter.Add / Gauge.Set / Histogram.Observe are lock-free
//     atomics with zero allocations, safe for the nn/sr hot paths.
//   - Everything else — handle registration, Emit, Snapshot — takes locks
//     and may allocate, and therefore must stay out of hot loops. The
//     livenas-vet telemetry-hot-path check machine-enforces this split for
//     internal/nn and internal/sr.
//
// Ownership rules: the component that owns a subsystem registers that
// subsystem's metrics (prefix "core_", "sr_", "gcc_", "transport_", "nn_")
// once at construction and holds the returned handles; handles are nil-safe
// so uninstrumented construction paths need no conditionals.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds a run's metrics and its event trace. The zero value is not
// usable; create registries with New. All methods are safe for concurrent
// use. A nil *Registry is a valid "no telemetry" sink: handle constructors
// return nil handles and every operation no-ops.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Event trace state (trace.go).
	evMu    sync.Mutex
	events  []Event
	evCap   int
	sink    io.Writer
	sinkErr error
	scratch []byte
	dropped atomic.Int64
}

// DefaultEventCap bounds the in-memory event log; past it new events are
// counted as dropped rather than evicting earlier ones (the earliest events
// — trainer state at t=0, first scheduler decisions — anchor the run's
// reconstructed timelines).
const DefaultEventCap = 32768

// New returns an enabled registry.
func New() *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		evCap:    DefaultEventCap,
	}
	r.enabled.Store(true)
	return r
}

// GobEncode implements gob.GobEncoder. A Registry is live runtime state —
// atomics, locks, an event ring, possibly a streaming sink — not a value,
// so persisted copies deliberately carry no metrics: encoding emits
// nothing. The hook exists so values holding a registry pointer (core.
// Config, core.Results) stay gob-encodable, which the sweep engine relies
// on for config hashing and the on-disk session-result cache.
func (r *Registry) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores a decoded registry as a fresh enabled one (the state a
// registry field would have been given at run time); any recorded metrics
// were dropped at encode time by design.
func (r *Registry) GobDecode([]byte) error {
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.evCap = DefaultEventCap
	r.enabled.Store(true)
	return nil
}

// SetEnabled flips the registry's master switch. Disabled handles cost one
// atomic load per operation and record nothing.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry. Registration locks; do not call inside hot loops —
// hold the handle instead.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it on first
// use with the given ascending upper bounds (observations above the last
// bound land in an overflow bucket). Re-registering an existing name returns
// the existing histogram; its bounds win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
			}
		}
		h = &Histogram{
			on:     &r.enabled,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe.
type Counter struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set float64 level. All methods are nil-safe.
type Gauge struct {
	bits atomic.Uint64
	on   *atomic.Bool
}

// Set records the gauge's current level.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the most recently set level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket
// i counts observations v with bounds[i-1] < v <= bounds[i]; the final
// bucket is the overflow above the last bound. All methods are nil-safe.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomicFloat
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	//livenas:allow race-guard bounds and counts are assigned once under Registry.mu before the histogram is published and never reassigned; the buckets themselves are atomic — lock-free observation is this type's contract
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket that crosses the target rank. Observations in the
// overflow bucket are attributed to the last bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / c
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// atomicFloat accumulates a float64 with a CAS loop (lock-free, alloc-free).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n ascending bounds starting at min, each factor times
// the previous — the standard latency-histogram shape.
func ExpBuckets(min, factor float64, n int) []float64 {
	if n <= 0 || min <= 0 || factor <= 1 {
		panic("telemetry: ExpBuckets requires n > 0, min > 0, factor > 1")
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds min, min+step, ...
func LinearBuckets(min, step float64, n int) []float64 {
	if n <= 0 || step <= 0 {
		panic("telemetry: LinearBuckets requires n > 0, step > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = min + float64(i)*step
	}
	return out
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound LE (math.Inf(1) for overflow).
type BucketCount struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

// MarshalJSON renders the overflow bound as the string "+Inf" (JSON has no
// infinity literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return []byte(fmt.Sprintf(`{"le":"+Inf","n":%d}`, b.N)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%s,"n":%d}`, jsonFloat(b.LE), b.N)), nil
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a deterministic point-in-time copy of the registry: map keys
// marshal in sorted order, so identical registry states produce identical
// JSON bytes.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Events        int                          `json:"events"`
	EventsDropped int64                        `json:"events_dropped"`
}

// Snapshot copies the registry's current state. Concurrent writers may land
// between individual metric reads; each metric's own state is consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.snapshotMetrics(&s)
	s.EventsDropped = r.dropped.Load()
	s.Events = r.eventCount()
	return s
}

func (r *Registry) snapshotMetrics(s *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		for i := range h.counts {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, N: h.counts[i].Load()})
		}
		s.Histograms[name] = hs
	}
}

func (r *Registry) eventCount() int {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	return len(r.events)
}

// WriteJSON writes the snapshot as indented JSON (the debug endpoint's
// expvar-style payload). Infinite bucket bounds are rendered as the string
// "+Inf" since JSON has no infinity literal.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// jsonFloat formats a float the way encoding/json does.
func jsonFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
