package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x"); again != c {
		t.Fatal("re-registering a counter must return the same handle")
	}
	r.SetEnabled(false)
	c.Inc()
	if got := c.Value(); got != 5 {
		t.Fatalf("disabled counter moved to %d", got)
	}
	r.SetEnabled(true)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("re-enabled counter = %d, want 6", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := New()
	g := r.Gauge("kbps")
	g.Set(812.5)
	if got := g.Value(); got != 812.5 {
		t.Fatalf("gauge = %v, want 812.5", got)
	}
	r.SetEnabled(false)
	g.Set(1)
	if got := g.Value(); got != 812.5 {
		t.Fatalf("disabled gauge moved to %v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.SetEnabled(true)
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", []float64{1}).Observe(1)
	r.Emit(0, "ev", Num("k", 1))
	if r.Enabled() || r.Counter("a").Value() != 0 || len(r.Events()) != 0 {
		t.Fatal("nil registry must be a no-op sink")
	}
	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry WriteEvents must be empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{10, 20, 40})
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-5050) > 1e-9 {
		t.Fatalf("sum = %v, want 5050", h.Sum())
	}
	// Buckets: (<=10)=10, (10,20]=10, (20,40]=20, overflow=60.
	want := []int64{10, 10, 20, 60}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	// p50 rank 50 lands in the overflow bucket -> reported as the last bound.
	if got := h.Quantile(0.5); got != 40 {
		t.Fatalf("p50 = %v, want 40 (overflow attributed to last bound)", got)
	}
	// p05 rank 5 is halfway through the first bucket (0,10].
	if got := h.Quantile(0.05); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p05 = %v, want 5", got)
	}
	if got := h.Quantile(0.15); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p15 = %v, want 15", got)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 5, 3)
	if want := []float64{0, 5, 10}; !equalF(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("frames").Add(42)
		r.Counter("losses").Add(3)
		r.Gauge("kbps").Set(812.5)
		h := r.Histogram("lat_ms", []float64{1, 10, 100})
		h.Observe(0.5)
		h.Observe(50)
		h.Observe(5000)
		r.Emit(time.Second, "trainer_state", Str("state", "training"))
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshots of identical state differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	// The JSON must round-trip and carry the overflow bucket as "+Inf".
	if !strings.Contains(a.String(), `"+Inf"`) {
		t.Fatalf("snapshot JSON missing +Inf overflow bucket:\n%s", a.String())
	}
	var decoded map[string]any
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
}

func TestEventTraceJSONL(t *testing.T) {
	r := New()
	var sink bytes.Buffer
	r.SetSink(&sink)
	r.Emit(5*time.Second, "trainer_state", Str("state", "suspended"), Num("gain_cur", 0.41))
	r.Emit(6*time.Second, "scheduler_split", Num("patch_kbps", 20), Num("video_kbps", 140))

	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("retained %d events, want 2", len(events))
	}
	if events[0].StrField("state") != "suspended" || events[0].NumField("gain_cur") != 0.41 {
		t.Fatalf("event fields mangled: %+v", events[0])
	}
	if got := r.EventsByType("scheduler_split"); len(got) != 1 || got[0].T != 6*time.Second {
		t.Fatalf("EventsByType = %+v", got)
	}

	var dump bytes.Buffer
	if err := r.WriteEvents(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.String() != sink.String() {
		t.Fatalf("streamed and dumped JSONL differ:\n%q\nvs\n%q", sink.String(), dump.String())
	}
	lines := strings.Split(strings.TrimSuffix(dump.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 does not parse: %v\n%s", err, lines[0])
	}
	if first["type"] != "trainer_state" || first["t_ms"] != 5000.0 || first["state"] != "suspended" {
		t.Fatalf("line 0 = %v", first)
	}
	// Fields must serialise in sorted key order regardless of call order.
	if !strings.Contains(lines[0], `"gain_cur":0.41,"state":"suspended"`) {
		t.Fatalf("fields not in sorted order: %s", lines[0])
	}
}

func TestEventCapDropsNew(t *testing.T) {
	r := New()
	r.SetEventCap(2)
	for i := 0; i < 5; i++ {
		r.Emit(time.Duration(i)*time.Second, "e")
	}
	if got := len(r.Events()); got != 2 {
		t.Fatalf("retained %d events, want 2", got)
	}
	if r.Events()[0].T != 0 {
		t.Fatal("cap must keep the earliest events")
	}
	if s := r.Snapshot(); s.EventsDropped != 3 || s.Events != 2 {
		t.Fatalf("snapshot events=%d dropped=%d, want 2/3", s.Events, s.EventsDropped)
	}
}

// TestOverheadContract pins the package's cost promises: disabled
// operations and enabled counter/gauge/histogram operations never allocate.
func TestOverheadContract(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 16))

	r.SetEnabled(false)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(1)
		h.Observe(3)
		r.Emit(time.Second, "ev", Num("a", 1), Str("b", "x"))
	}); n != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", n)
	}

	r.SetEnabled(true)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(2.5)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("enabled counter/gauge/histogram path allocates %.1f/op, want 0", n)
	}

	// Nil handles (uninstrumented components) must also be free.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(200, func() {
		nc.Inc()
		ng.Set(1)
		nh.Observe(1)
	}); n != 0 {
		t.Fatalf("nil-handle path allocates %.1f/op, want 0", n)
	}
}

func TestSummaryValidateAndRoundTrip(t *testing.T) {
	s := RunSummary{
		Scheme: "LiveNAS", Content: "fortnite", DurationS: 60,
		AvgTargetKbps: 800, AvgVideoKbps: 700, AvgPatchKbps: 100, PatchShare: 0.125,
		TrainerDutyCycle: 0.4, TrainerTransitions: 3,
		InferFrames: 600, InferP50MS: 8.5, InferP99MS: 14.0,
		Counters: map[string]int64{"core_frames_decoded": 600},
		Gauges:   map[string]float64{"gcc_target_kbps": 812},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid summary rejected: %v", err)
	}
	path := t.TempDir() + "/summary.json"
	if err := WriteSummaryFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.InferP99MS != s.InferP99MS || got.Counters["core_frames_decoded"] != 600 {
		t.Fatalf("round trip mangled summary: %+v", got)
	}

	bad := s
	bad.InferFrames = 0
	if bad.Validate() == nil {
		t.Fatal("summary without inference frames must fail validation")
	}
	bad = s
	bad.InferP99MS = 1
	if bad.Validate() == nil {
		t.Fatal("p99 < p50 must fail validation")
	}
}
