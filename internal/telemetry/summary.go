package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// RunSummary is the end-of-run telemetry digest an experiment or bench run
// emits (cmd/livenas-bench -summary, scripts/ci.sh full tier). It carries
// the three control-loop outcomes the paper's evaluation keys on — the
// scheduler's bandwidth split, the content-adaptive trainer's duty cycle,
// and the inference-latency distribution — plus the raw counter/gauge state
// for ad-hoc comparison. EXPERIMENTS.md requires comparable runs to cite
// this summary.
type RunSummary struct {
	Scheme    string  `json:"scheme"`
	Content   string  `json:"content"`
	DurationS float64 `json:"duration_s"`
	// Channel is the stream's channel key on a multi-tenant node (empty for
	// standalone sessions).
	Channel string `json:"channel,omitempty"`

	// Scheduler split (§5.1): session means of the bandwidth shares.
	AvgTargetKbps float64 `json:"avg_target_kbps"`
	AvgVideoKbps  float64 `json:"avg_video_kbps"`
	AvgPatchKbps  float64 `json:"avg_patch_kbps"`
	// PatchShare is patch kbps as a fraction of the GCC target.
	PatchShare float64 `json:"patch_share"`

	// Content-adaptive trainer (Algorithm 1).
	TrainerDutyCycle   float64 `json:"trainer_duty_cycle"`
	TrainerTransitions int     `json:"trainer_transitions"`

	// Inference latency (device-model, milliseconds).
	InferFrames int64   `json:"infer_frames"`
	InferP50MS  float64 `json:"infer_p50_ms"`
	InferP99MS  float64 `json:"infer_p99_ms"`

	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// WriteJSON writes the summary as indented JSON (deterministic: map keys
// marshal sorted).
func (s RunSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteSummaryFile writes the summary to path.
func WriteSummaryFile(path string, s RunSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSummaryFile loads a summary written by WriteSummaryFile and validates
// the fields the CI gate consumes.
func ReadSummaryFile(path string) (RunSummary, error) {
	var s RunSummary
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the summary carries the control-loop signals a comparable
// run must cite.
func (s RunSummary) Validate() error {
	switch {
	case s.DurationS <= 0:
		return fmt.Errorf("telemetry summary: duration_s %v not positive", s.DurationS)
	case s.InferFrames <= 0:
		return fmt.Errorf("telemetry summary: no inference frames recorded")
	case s.InferP50MS <= 0 || s.InferP99MS < s.InferP50MS:
		return fmt.Errorf("telemetry summary: implausible inference latency p50=%v p99=%v", s.InferP50MS, s.InferP99MS)
	case s.AvgTargetKbps <= 0:
		return fmt.Errorf("telemetry summary: avg_target_kbps %v not positive", s.AvgTargetKbps)
	case s.TrainerDutyCycle < 0 || s.TrainerDutyCycle > 1:
		return fmt.Errorf("telemetry summary: trainer_duty_cycle %v outside [0,1]", s.TrainerDutyCycle)
	}
	return nil
}
