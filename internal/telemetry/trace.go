package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// Event is one structured trace record: a run-relative timestamp (virtual
// sim time in experiments, wall time since session start in the real
// server — always caller-supplied, never read from the wall clock here, so
// deterministic-replay code stays deterministic), a type tag, and typed
// key/value fields.
//
// The JSONL encoding is one object per line with reserved keys "t_ms" and
// "type" followed by the event's fields in sorted key order:
//
//	{"t_ms":5000.000,"type":"trainer_state","gain_cur":0.41,"state":"suspended"}
//
// Event types emitted by the instrumented subsystems (DESIGN.md
// "Telemetry" documents the full schema):
//
//	trainer_state    core: Algorithm 1 ON/OFF transition
//	train_epoch      core: one online-training epoch's gain/loss accounting
//	scheduler_split  core: one §5.1 bandwidth-split decision
//	patch_admit      core: a received patch admitted as a training sample
//	gcc_estimate     gcc: a bandwidth-estimate change with controller state
//	infer_frame      sr: one super-resolved output frame's model latency
type Event struct {
	T      time.Duration
	Type   string
	Fields []Field
}

// Field is one event key/value; construct with Num or Str.
type Field struct {
	Key   string
	Num   float64
	Str   string
	isStr bool
}

// Num makes a numeric field.
func Num(key string, v float64) Field { return Field{Key: key, Num: v} }

// Str makes a string field.
func Str(key, v string) Field { return Field{Key: key, Str: v, isStr: true} }

// Emit records one trace event. Disabled registries pay one atomic load and
// do not allocate. Events past the retention cap are dropped (counted in
// Snapshot.EventsDropped) rather than evicting earlier events. Emit locks
// the trace log; keep it out of per-element hot loops.
func (r *Registry) Emit(t time.Duration, typ string, fields ...Field) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	if len(r.events) >= r.evCap {
		r.dropped.Add(1)
		return
	}
	ev := Event{T: t, Type: typ, Fields: append([]Field(nil), fields...)}
	r.events = append(r.events, ev)
	if r.sink != nil {
		r.scratch = appendEventJSON(r.scratch[:0], ev)
		if _, err := r.sink.Write(r.scratch); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
	}
}

// SetSink streams every subsequent event to w as JSONL, in addition to the
// in-memory log. Pass nil to stop streaming.
func (r *Registry) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	r.sink = w
	r.sinkErr = nil
}

// SinkErr returns the first error the streaming sink produced, if any.
func (r *Registry) SinkErr() error {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	return r.sinkErr
}

// SetEventCap bounds the in-memory event log (default DefaultEventCap).
// It does not truncate events already retained.
func (r *Registry) SetEventCap(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	r.evCap = n
}

// Events returns a copy of the retained event log in emission order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	return append([]Event(nil), r.events...)
}

// EventsByType returns the retained events of one type in emission order.
func (r *Registry) EventsByType(typ string) []Event {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	var out []Event
	for _, ev := range r.events {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

// WriteEvents dumps the retained event log as JSONL.
func (r *Registry) WriteEvents(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, ev := range r.Events() {
		buf = appendEventJSON(buf[:0], ev)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Get returns the named field and whether it is present.
func (e Event) Get(key string) (Field, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f, true
		}
	}
	return Field{}, false
}

// NumField returns the named numeric field's value, or 0 when absent.
func (e Event) NumField(key string) float64 {
	f, _ := e.Get(key)
	return f.Num
}

// StrField returns the named string field's value, or "" when absent.
func (e Event) StrField(key string) string {
	f, _ := e.Get(key)
	return f.Str
}

// appendEventJSON appends one JSONL line (object + newline) for ev. Fields
// are written in sorted key order so the encoding is deterministic
// regardless of emission argument order.
func appendEventJSON(b []byte, ev Event) []byte {
	b = append(b, `{"t_ms":`...)
	b = strconv.AppendFloat(b, float64(ev.T)/float64(time.Millisecond), 'f', 3, 64)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, ev.Type)
	fields := ev.Fields
	if !sort.SliceIsSorted(fields, func(i, j int) bool { return fields[i].Key < fields[j].Key }) {
		fields = append([]Field(nil), fields...)
		sort.Slice(fields, func(i, j int) bool { return fields[i].Key < fields[j].Key })
	}
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		if f.isStr {
			b = appendJSONString(b, f.Str)
		} else {
			b = appendJSONFloat(b, f.Num)
		}
	}
	b = append(b, '}', '\n')
	return b
}

// appendJSONString appends s as a JSON string. Keys and values in this
// codebase are plain identifiers; the general path covers the rest.
func appendJSONString(b []byte, s string) []byte {
	plain := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			plain = false
			break
		}
	}
	if plain {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	enc, err := json.Marshal(s)
	if err != nil { // unreachable: strings always marshal
		return append(b, `""`...)
	}
	return append(b, enc...)
}

// appendJSONFloat appends v as a JSON number; NaN/Inf (not representable in
// JSON) become null.
func appendJSONFloat(b []byte, v float64) []byte {
	if v != v || v > 1.797693134862315708e308 || v < -1.797693134862315708e308 {
		return append(b, `null`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
