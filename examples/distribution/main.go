// Distribution: the end-viewer side (§8.3). The ingest improvement from a
// LiveNAS session is translated into an effective-bitrate boost for the
// distribution ladder, and adaptive-streaming viewers replay it over
// Pensieve-style downlink traces with robustMPC and the Pensieve-like ABR.
//
//	go run ./examples/distribution
package main

import (
	"fmt"
	"time"

	"livenas"
	"livenas/internal/abr"
	"livenas/internal/trace"
)

func main() {
	// 1. Ingest: measure LiveNAS's quality gain on one session.
	uplink := livenas.FCCUplink(31, 3*time.Minute, 250)
	cfg := livenas.Config{
		Cat:      livenas.JustChatting,
		Seed:     31,
		Native:   livenas.Resolution{Name: "1080p-class", W: 384, H: 216},
		Ingest:   livenas.Resolution{Name: "540p-class", W: 192, H: 108},
		FPS:      10,
		Duration: 60 * time.Second,
		Trace:    uplink,

		PatchSize:     24,
		MinVideoKbps:  40,
		GCCInitKbps:   160,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
		MTU:           240,
		Channels:      6,
	}
	cfg.Scheme = livenas.SchemeWebRTC
	web := livenas.Run(cfg)
	cfg.Scheme = livenas.SchemeLiveNAS
	ln := livenas.Run(cfg)
	gain := ln.GainOver(web)
	fmt.Printf("Ingest gain: %+.2f dB (WebRTC %.2f -> LiveNAS %.2f)\n", gain, web.AvgPSNR, ln.AvgPSNR)

	// 2. Effective bitrate: invert the rate-quality curve (§8.3).
	boost := abr.EffectiveBitrate(1000, web.AvgPSNR, ln.AvgPSNR) / 1000
	fmt.Printf("Effective-bitrate boost for transcoded chunks: x%.2f\n\n", boost)

	// 3. Viewers on adaptive streaming over two downlink trace families.
	ladder := abr.Ladder(false)
	boosted := abr.Boost(ladder, boost)
	for _, fam := range []struct {
		name string
		mk   func(i int) *trace.Trace
	}{
		{"FCC broadband", func(i int) *trace.Trace { return trace.FCCDownlink(int64(i), 3*time.Minute) }},
		{"Pensieve 3G", func(i int) *trace.Trace { return trace.PensieveDownlink(int64(i), 3*time.Minute) }},
	} {
		var traces []*trace.Trace
		for i := 0; i < 6; i++ {
			traces = append(traces, fam.mk(i+40))
		}
		fmt.Printf("%s downlinks:\n", fam.name)
		for _, alg := range []abr.Algorithm{&abr.PensieveLike{}, &abr.RobustMPC{}} {
			q0 := abr.MeanQoE(ladder, traces, alg)
			q1 := abr.MeanQoE(boosted, traces, alg)
			fmt.Printf("  %-10s QoE: WebRTC-sourced %.2f -> LiveNAS-sourced %.2f (%+.0f%%)\n",
				alg.Name(), q0, q1, (q1-q0)/q0*100)
		}
	}
	fmt.Println("\n(paper: 12-69% viewer QoE improvement across traces and ABRs)")
}
