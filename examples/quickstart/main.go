// Quickstart: run one neural-enhanced live-ingest session and compare it
// against vanilla WebRTC on the same network trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"livenas"
)

func main() {
	// A bandwidth-constrained uplink (FCC-style, ~250 kbps for the
	// reduced-scale world used in examples; see DESIGN.md).
	uplink := livenas.FCCUplink(3, 3*time.Minute, 250)

	cfg := livenas.Config{
		Cat:      livenas.JustChatting,
		Seed:     7,
		Native:   livenas.Resolution{Name: "1080p-class", W: 384, H: 216},
		Ingest:   livenas.Resolution{Name: "540p-class", W: 192, H: 108},
		FPS:      10,
		Duration: 60 * time.Second,
		Trace:    uplink,

		// Reduced-scale transport constants (area-scaled from WebRTC's).
		PatchSize:     24,
		MinVideoKbps:  40,
		GCCInitKbps:   160,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
		MTU:           240,
		Channels:      6,
	}

	fmt.Println("Running vanilla WebRTC baseline...")
	cfg.Scheme = livenas.SchemeWebRTC
	web := livenas.Run(cfg)

	fmt.Println("Running LiveNAS (online-trained super-resolution)...")
	cfg.Scheme = livenas.SchemeLiveNAS
	ln := livenas.Run(cfg)

	fmt.Printf(`
Results over %v of simulated streaming:
  WebRTC   : %.2f dB PSNR  (video %.0f kbps)
  LiveNAS  : %.2f dB PSNR  (video %.0f kbps + patches %.0f kbps)
  Gain     : %+.2f dB  (paper reports 0.81-3.04 dB across contents)

  Patches sent/received : %d/%d
  GPU training time     : %v (%.0f%% of the stream; content-adaptive)
  Frames delivered/lost : %d/%d
`,
		cfg.Duration,
		web.AvgPSNR, web.AvgVideoKbps,
		ln.AvgPSNR, ln.AvgVideoKbps, ln.AvgPatchKbps,
		ln.GainOver(web),
		ln.PatchesSent, ln.PatchesReceived,
		ln.GPUTrainBusy, ln.TrainingShare()*100,
		ln.FramesDecoded, ln.FramesLost,
	)
}
