// Mobile4K: 4K live streaming from a battery-powered client that cannot
// encode 4K in real time (§8.1/§8.2). The client ingests at 1080p-class
// resolution; the media server super-resolves x2 to the 4K-class target.
// The example reports the delivered quality and the modelled client power
// saving versus direct 4K encoding (the paper's Figure 17).
//
//	go run ./examples/mobile4k
package main

import (
	"fmt"
	"time"

	"livenas"
	"livenas/internal/codec"
	"livenas/internal/power"
	"livenas/internal/trace"
)

func main() {
	uplink := livenas.FCCUplink(21, 4*time.Minute, 700)

	cfg := livenas.Config{
		Cat:      livenas.Sports,
		Seed:     21,
		Native:   livenas.Resolution{Name: "4K-class", W: 768, H: 432},
		Ingest:   livenas.Resolution{Name: "1080p-class", W: 384, H: 216},
		FPS:      10,
		Duration: 90 * time.Second,
		Trace:    uplink,
		// Real-time 4K needs 3 GPUs for inference (paper Table 2).
		InferGPUs: 3,

		PatchSize:     48, // scales with the 4K-class canvas
		MinVideoKbps:  40,
		GCCInitKbps:   240,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
		MTU:           240,
		Channels:      6,
	}

	fmt.Println("Running 4K-target ingest (1080p-class upload, x2 SR at the server)...")
	cfg.Scheme = livenas.SchemeLiveNAS
	ln := livenas.Run(cfg)
	cfg.Scheme = livenas.SchemeWebRTC
	web := livenas.Run(cfg)

	for _, p := range []codec.Profile{codec.BX8, codec.BX9} {
		full := power.Client(p, trace.R4K)
		lean := power.Client(p, trace.R1080)
		fmt.Printf("%s client power: 4K encode %.2f W vs 1080p ingest %.2f W (saving %.0f%%)\n",
			p, full.Total(), lean.Total(), power.Savings(p, trace.R4K, trace.R1080)*100)
	}

	fmt.Printf(`
Delivered 4K-class quality over %v:
  bilinear upscale (WebRTC)  : %.2f dB
  LiveNAS super-resolution   : %.2f dB  (%+.2f dB)
  SR inference latency       : %v per frame on %d GPUs (model)
  patches: %d sent, uplink share %.1f%%
`,
		cfg.Duration, web.AvgPSNR, ln.AvgPSNR, ln.GainOver(web),
		ln.AvgInferLatency, 3,
		ln.PatchesSent, ln.AvgPatchKbps/ln.AvgBandwidthKbps*100)
}
