// Persistent: persistent online learning across streaming sessions (§6.1).
// Session 1 trains a model online and saves it; session 2 of the same
// streamer warm-starts from the saved model and compares its early-session
// quality against a cold start — the Figure 11 effect, plus the model
// save/load round trip an operator would run between sessions.
//
//	go run ./examples/persistent
package main

import (
	"bytes"
	"fmt"
	"time"

	"livenas"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/sr"
	"livenas/internal/vidgen"
)

func main() {
	const (
		nativeW, nativeH = 384, 216
		scale            = 2
		patch            = 24
	)

	// ---- Session 1: train online on yesterday's stream, then save. ----
	fmt.Println("Session 1: online training on yesterday's stream...")
	yesterday := vidgen.NewSource(livenas.WorldOfWarcraft, nativeW, nativeH, 100, 300)
	model := sr.NewModel(scale, sr.DefaultChannels, 1)
	trainer := sr.NewTrainer(model, sr.DefaultTrainConfig(), 2)
	cells := frame.Grid(nativeW, nativeH, patch)
	n := 0
	for ts := 0.0; ts < 120; ts += 0.5 {
		f := yesterday.FrameAt(ts)
		cell := cells[n%len(cells)]
		n++
		hr := f.Crop(cell.X, cell.Y, patch, patch)
		trainer.AddSample(hr.Downscale(scale), hr)
	}
	for e := 0; e < 10; e++ {
		trainer.Epoch()
	}

	var saved bytes.Buffer
	if err := model.Save(&saved); err != nil {
		panic(err)
	}
	fmt.Printf("  model saved: %d bytes (%d parameters)\n\n", saved.Len(), model.ParamCount())

	// ---- Session 2: the same streamer goes live again today. ----
	today := vidgen.NewSource(livenas.WorldOfWarcraft, nativeW, nativeH, 101, 300)

	warm, err := sr.Load(&saved)
	if err != nil {
		panic(err)
	}
	cold := sr.NewModel(scale, sr.DefaultChannels, 1)

	// Both get the same short early-session training (first 30 seconds).
	warmUp := func(m *sr.Model) {
		tr := sr.NewTrainer(m, sr.DefaultTrainConfig(), 3)
		k := 0
		for ts := 0.0; ts < 30; ts += 0.5 {
			f := today.FrameAt(ts)
			cell := cells[k%len(cells)]
			k++
			hr := f.Crop(cell.X, cell.Y, patch, patch)
			tr.AddSample(hr.Downscale(scale), hr)
		}
		for e := 0; e < 3; e++ {
			tr.Epoch()
		}
	}
	warmUp(warm)
	warmUp(cold)

	// Early-session quality comparison.
	eval := func(m *sr.Model, t float64) float64 {
		hr := today.FrameAt(t)
		lr := hr.Downscale(scale)
		bil := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
		return metrics.PSNR(hr, m.SuperResolve(lr)) - bil
	}
	var gw, gc float64
	samples := 0
	for t := 32.0; t < 44; t += 3 {
		gw += eval(warm, t)
		gc += eval(cold, t)
		samples++
	}
	gw /= float64(samples)
	gc /= float64(samples)

	fmt.Printf(`Session 2, early-session SR gain over bilinear (after %v of training):
  cold start (generic init)      : %+.2f dB
  persistent (yesterday's model) : %+.2f dB   (%+.2f dB from persistence)

(paper Figure 11: persistent online learning adds 0.37-0.7 dB)
`, 30*time.Second, gc, gw, gw-gc)
}
