// Gamestream: a scene-change-heavy stream (Fortnite-class content) showing
// the content-adaptive trainer suspending on gain saturation and resuming
// on scene transitions (the paper's Figure 16 case study), and what that
// saves in GPU time versus continuous training.
//
//	go run ./examples/gamestream
package main

import (
	"fmt"
	"time"

	"livenas"
)

func main() {
	uplink := livenas.FCCUplink(11, 5*time.Minute, 300)

	base := livenas.Config{
		Cat:      livenas.Fortnite, // frequent scene changes
		Seed:     11,
		Native:   livenas.Resolution{Name: "1080p-class", W: 384, H: 216},
		Ingest:   livenas.Resolution{Name: "540p-class", W: 192, H: 108},
		FPS:      10,
		Duration: 150 * time.Second,
		Trace:    uplink,

		PatchSize:     24,
		MinVideoKbps:  40,
		GCCInitKbps:   160,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
		MTU:           240,
		Channels:      6,
	}

	fmt.Println("Content-adaptive training (LiveNAS, Algorithm 1):")
	adaptive := base
	adaptive.TrainPolicy = livenas.TrainAdaptive
	ra := livenas.Run(adaptive)
	for _, st := range ra.TrainerTimeline() {
		fmt.Printf("  t=%6.1fs  trainer %s\n", st.T.Seconds(), st.State)
	}

	continuous := base
	continuous.TrainPolicy = livenas.TrainContinuous
	rc := livenas.Run(continuous)

	earlyStop := base
	earlyStop.TrainPolicy = livenas.TrainEarlyStop
	re := livenas.Run(earlyStop)

	fmt.Printf(`
Scheme            PSNR      GPU training time
continuous        %.2f dB  %v (%.0f%% of stream)
content-adaptive  %.2f dB  %v (%.0f%% of stream)
early-stop        %.2f dB  %v (%.0f%% of stream)

Content-adaptive training keeps %.0f%% of continuous training's quality gain
while using %.0f%% of its GPU time (paper case study: comparable quality at
46%% of the GPU; 65%% average savings across streams).
`,
		rc.AvgPSNR, rc.GPUTrainBusy, rc.TrainingShare()*100,
		ra.AvgPSNR, ra.GPUTrainBusy, ra.TrainingShare()*100,
		re.AvgPSNR, re.GPUTrainBusy, re.TrainingShare()*100,
		ra.AvgPSNR/rc.AvgPSNR*100,
		ra.GPUTrainBusy.Seconds()/rc.GPUTrainBusy.Seconds()*100,
	)
}
