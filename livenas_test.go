package livenas

import (
	"context"
	"testing"
	"time"
)

func TestFacadeRun(t *testing.T) {
	tr := FCCUplink(5, time.Minute, 250)
	cfg := Config{
		Cat:      Podcast,
		Seed:     5,
		Native:   Resolution{Name: "n", W: 384, H: 216},
		Ingest:   Resolution{Name: "i", W: 192, H: 108},
		FPS:      10,
		Duration: 20 * time.Second,
		Trace:    tr,
		Scheme:   SchemeLiveNAS,

		PatchSize: 24, MinVideoKbps: 40, GCCInitKbps: 160,
		StepKbps: 20, InitPatchKbps: 20, MinPatchKbps: 5,
		MTU: 240, Channels: 6,
	}
	r := Run(cfg)
	if r.FramesDecoded == 0 {
		t.Fatal("no frames decoded through facade")
	}
	if r.AvgPSNR <= 0 {
		t.Fatalf("PSNR %v", r.AvgPSNR)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 25 {
		t.Fatalf("registry too small: %d", len(ids))
	}
	if _, err := RunExperiment(context.Background(), "no-such-figure", DefaultExpOptions()); err == nil {
		t.Fatal("unknown experiment must error")
	}
	o := DefaultExpOptions()
	tables, err := RunExperiment(context.Background(), "table2", o)
	if err != nil || len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("table2: %v / %v", tables, err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if IngestResolutionFor(800, false) != R360 {
		t.Fatal("ingest mapping wrong through facade")
	}
	if r := ReducedResolution(R1080, 5); r.W != 384 || r.H != 216 {
		t.Fatalf("reduced %v", r)
	}
	if ThreeG(1, time.Minute).Avg() <= 0 {
		t.Fatal("3G trace empty")
	}
}
