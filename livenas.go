// Package livenas is the public facade of LiveNAS-Go, a from-scratch Go
// reproduction of "Neural-Enhanced Live Streaming: Improving Live Video
// Ingest via Online Learning" (SIGCOMM 2020).
//
// The package re-exports the pieces a downstream user needs to run
// neural-enhanced ingest sessions and the paper's experiments:
//
//   - Config/Run/Results — simulate a full ingest session (client with the
//     quality-optimizing scheduler and patch sampler, media server with
//     content-adaptive online training and the SR processor) over an
//     emulated network trace.
//   - Scheme and TrainPolicy constants — the systems and training policies
//     compared in the paper's evaluation.
//   - Trace generators and content categories.
//   - The experiment registry (Experiments, RunExperiment) regenerating
//     every table and figure of the paper.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// full system inventory.
package livenas

import (
	"livenas/internal/core"
	"livenas/internal/exp"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Core session API.
type (
	// Config describes one ingest session experiment.
	Config = core.Config
	// Results aggregates a session's measurements.
	Results = core.Results
	// Scheme selects the system under test.
	Scheme = core.Scheme
	// TrainPolicy selects the server's training schedule.
	TrainPolicy = core.TrainPolicy
	// Category is a stream-content category.
	Category = vidgen.Category
	// Trace is a bandwidth trace.
	Trace = trace.Trace
	// Resolution is a video resolution class.
	Resolution = trace.Resolution
)

// Schemes (the §8.1 comparison set).
const (
	SchemeWebRTC     = core.SchemeWebRTC
	SchemeGeneric    = core.SchemeGeneric
	SchemePretrained = core.SchemePretrained
	SchemeLiveNAS    = core.SchemeLiveNAS
)

// Training policies (the §8.2 comparison set).
const (
	TrainAdaptive   = core.TrainAdaptive
	TrainContinuous = core.TrainContinuous
	TrainEarlyStop  = core.TrainEarlyStop
	TrainOneTime    = core.TrainOneTime
)

// Content categories (§8 evaluation set).
const (
	LeagueOfLegends  = vidgen.LeagueOfLegends
	JustChatting     = vidgen.JustChatting
	WorldOfWarcraft  = vidgen.WorldOfWarcraft
	EscapeFromTarkov = vidgen.EscapeFromTarkov
	Fortnite         = vidgen.Fortnite
	Podcast          = vidgen.Podcast
	Sports           = vidgen.Sports
	LiveEvent        = vidgen.LiveEvent
	FoodCooking      = vidgen.FoodCooking
)

// Resolution ladder.
var (
	R270  = trace.R270
	R360  = trace.R360
	R540  = trace.R540
	R720  = trace.R720
	R1080 = trace.R1080
	R4K   = trace.R4K
)

// Run executes one ingest session on the discrete-event simulator.
func Run(cfg Config) *Results { return core.Run(cfg) }

// FCCUplink synthesises an FCC-style broadband uplink trace.
var FCCUplink = trace.FCCUplink

// ThreeG synthesises a 3G commute trace.
var ThreeG = trace.ThreeG

// IngestResolutionFor maps a trace's mean bandwidth to the ingest
// resolution, per the paper's Figure 8 policy.
var IngestResolutionFor = trace.IngestResolutionFor

// ReducedResolution scales a resolution class down for fast experiments.
var ReducedResolution = core.ReducedResolution

// Experiment harness access.
type (
	// ExpOptions scales the experiment harness.
	ExpOptions = exp.Options
	// ExpTable is a printable experiment result.
	ExpTable = exp.Table
)

// Experiments lists every reproducible table and figure id.
func Experiments() []string { return exp.IDs() }

// RunExperiment regenerates one paper table/figure by id.
func RunExperiment(id string, o ExpOptions) ([]*ExpTable, error) {
	e, err := exp.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o), nil
}

// DefaultExpOptions returns the fast harness configuration.
func DefaultExpOptions() ExpOptions { return exp.DefaultOptions() }
