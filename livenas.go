// Package livenas is the public facade of LiveNAS-Go, a from-scratch Go
// reproduction of "Neural-Enhanced Live Streaming: Improving Live Video
// Ingest via Online Learning" (SIGCOMM 2020).
//
// The package re-exports the pieces a downstream user needs to run
// neural-enhanced ingest sessions and the paper's experiments:
//
//   - Config/Run/Results — simulate a full ingest session (client with the
//     quality-optimizing scheduler and patch sampler, media server with
//     content-adaptive online training and the SR processor) over an
//     emulated network trace.
//   - Scheme and TrainPolicy constants — the systems and training policies
//     compared in the paper's evaluation.
//   - Trace generators and content categories.
//   - The experiment registry (Experiments, RunExperiment) regenerating
//     every table and figure of the paper.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// full system inventory.
package livenas

import (
	"context"

	"livenas/internal/core"
	"livenas/internal/edge"
	"livenas/internal/exp"
	"livenas/internal/fleet"
	"livenas/internal/sweep"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Core session API.
type (
	// Config describes one ingest session experiment.
	Config = core.Config
	// Results aggregates a session's measurements.
	Results = core.Results
	// Scheme selects the system under test.
	Scheme = core.Scheme
	// TrainPolicy selects the server's training schedule.
	TrainPolicy = core.TrainPolicy
	// Category is a stream-content category.
	Category = vidgen.Category
	// Trace is a bandwidth trace.
	Trace = trace.Trace
	// Resolution is a video resolution class.
	Resolution = trace.Resolution
)

// Schemes (the §8.1 comparison set).
const (
	SchemeWebRTC     = core.SchemeWebRTC
	SchemeGeneric    = core.SchemeGeneric
	SchemePretrained = core.SchemePretrained
	SchemeLiveNAS    = core.SchemeLiveNAS
)

// Training policies (the §8.2 comparison set).
const (
	TrainAdaptive   = core.TrainAdaptive
	TrainContinuous = core.TrainContinuous
	TrainEarlyStop  = core.TrainEarlyStop
	TrainOneTime    = core.TrainOneTime
)

// Content categories (§8 evaluation set).
const (
	LeagueOfLegends  = vidgen.LeagueOfLegends
	JustChatting     = vidgen.JustChatting
	WorldOfWarcraft  = vidgen.WorldOfWarcraft
	EscapeFromTarkov = vidgen.EscapeFromTarkov
	Fortnite         = vidgen.Fortnite
	Podcast          = vidgen.Podcast
	Sports           = vidgen.Sports
	LiveEvent        = vidgen.LiveEvent
	FoodCooking      = vidgen.FoodCooking
)

// Resolution ladder.
var (
	R270  = trace.R270
	R360  = trace.R360
	R540  = trace.R540
	R720  = trace.R720
	R1080 = trace.R1080
	R4K   = trace.R4K
)

// Run executes one ingest session on the discrete-event simulator. It
// panics on an invalid config (Config.Validate's error); RunContext returns
// the error instead.
func Run(cfg Config) *Results { return core.Run(cfg) }

// RunContext executes one ingest session under ctx. The config is validated
// up front and cancellation is honoured at simulator-event boundaries, so a
// long session aborts promptly without leaving goroutines behind.
func RunContext(ctx context.Context, cfg Config) (*Results, error) { return core.RunContext(ctx, cfg) }

// FCCUplink synthesises an FCC-style broadband uplink trace.
var FCCUplink = trace.FCCUplink

// ThreeG synthesises a 3G commute trace.
var ThreeG = trace.ThreeG

// IngestResolutionFor maps a trace's mean bandwidth to the ingest
// resolution, per the paper's Figure 8 policy.
var IngestResolutionFor = trace.IngestResolutionFor

// ReducedResolution scales a resolution class down for fast experiments.
var ReducedResolution = core.ReducedResolution

// Experiment harness access.
type (
	// ExpOptions scales the experiment harness.
	ExpOptions = exp.Options
	// ExpTable is a printable experiment result.
	ExpTable = exp.Table
)

// Sweep engine access: run many independent sessions across a bounded
// worker set with deterministic results and an optional on-disk cache.
type (
	// SweepRunner executes submitted sessions concurrently.
	SweepRunner = sweep.Runner
	// SweepOptions configures a SweepRunner (workers, cache, telemetry).
	SweepOptions = sweep.Options
	// SweepGrid declares a cartesian sweep over schemes/contents/traces/policies.
	SweepGrid = sweep.Grid
	// SweepCache is the content-addressed session-result store.
	SweepCache = sweep.Cache
)

// NewSweepRunner returns a session sweep engine bound to ctx.
func NewSweepRunner(ctx context.Context, o SweepOptions) *SweepRunner { return sweep.New(ctx, o) }

// OpenSweepCache opens (creating if needed) an on-disk session cache.
func OpenSweepCache(dir string) (*SweepCache, error) { return sweep.Open(dir) }

// Fleet layer access: a multi-tenant ingest node that admission-controls
// channel-keyed streams against a simulated GPU pool on a virtual clock,
// then executes the admitted sessions through a sweep runner.
type (
	// FleetManager is the admission-control registry of one ingest node.
	FleetManager = fleet.Manager
	// FleetOptions sizes the node (GPU pool, admission policy, telemetry).
	FleetOptions = fleet.Options
	// FleetPolicy selects what happens to over-capacity arrivals.
	FleetPolicy = fleet.Policy
	// FleetStreamSpec declares one arriving stream (key, arrival, config).
	FleetStreamSpec = fleet.StreamSpec
	// FleetPlan is a completed virtual admission timeline ready to execute.
	FleetPlan = fleet.Plan
	// FleetStats summarizes a plan's admission timeline.
	FleetStats = fleet.Stats
)

// Admission policies for over-capacity arrivals.
const (
	FleetPolicyReject  = fleet.PolicyReject
	FleetPolicyDegrade = fleet.PolicyDegrade
	FleetPolicyQueue   = fleet.PolicyQueue
)

// NewFleetManager returns an empty ingest node.
func NewFleetManager(o FleetOptions) *FleetManager { return fleet.NewManager(o) }

// BuildFleetPlan registers every spec against a fresh node and runs the
// virtual admission timeline to completion.
func BuildFleetPlan(specs []FleetStreamSpec, o FleetOptions) (*FleetPlan, error) {
	return fleet.BuildPlan(specs, o)
}

// Edge layer access: distribution of each channel's enhanced output as
// HLS-style segments from an origin through relay trees to viewer
// sessions, over the unified transport.Conn API — the same actors run on
// netem-shaped simulated links (RunEdge) and on real sockets
// (cmd/livenas-edge, cmd/livenas-server's origin endpoint).
type (
	// EdgeOrigin packages enhanced epochs into segments and serves the
	// rolling playlist to subscribers.
	EdgeOrigin = edge.Origin
	// EdgeRelay subscribes upstream and fans out to many downstream
	// subscribers through a pull-through segment cache.
	EdgeRelay = edge.Relay
	// EdgeViewer plays one channel: follows the playlist, fetches
	// segments at the rung its ABR algorithm picks, tracks QoE.
	EdgeViewer = edge.Viewer
	// EdgeViewerConfig parameterises a viewer session.
	EdgeViewerConfig = edge.ViewerConfig
	// EdgeViewerStats summarises one viewer's playback.
	EdgeViewerStats = edge.ViewerStats
	// EdgeSegment is one content-addressed media segment.
	EdgeSegment = edge.Segment
	// EdgePlaylist is the rolling window of published segment refs.
	EdgePlaylist = edge.Playlist
	// EdgeSimConfig describes one deterministic fan-out simulation.
	EdgeSimConfig = edge.SimConfig
	// EdgeResult aggregates a fan-out simulation's delivery metrics.
	EdgeResult = edge.Result
	// EdgeTelemetry is the edge layer's metric bundle.
	EdgeTelemetry = edge.Telemetry
)

// RunEdge runs one origin→relay→viewer fan-out simulation on a virtual
// clock: byte-identical results for the same config on every host.
func RunEdge(c EdgeSimConfig) (*EdgeResult, error) { return edge.RunSim(c) }

// Experiments lists every reproducible table and figure id.
func Experiments() []string { return exp.IDs() }

// RunExperiment regenerates one paper table/figure by id, running its
// sessions on a private sweep runner bound to ctx.
func RunExperiment(ctx context.Context, id string, o ExpOptions) ([]*ExpTable, error) {
	return RunExperimentWith(ctx, id, o, nil)
}

// RunExperimentWith is RunExperiment with an explicit sweep runner, letting
// callers share one cache/worker pool (and its telemetry) across
// experiments. A nil runner gets a private one.
func RunExperimentWith(ctx context.Context, id string, o ExpOptions, r *SweepRunner) ([]*ExpTable, error) {
	e, err := exp.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, o, r), nil
}

// DefaultExpOptions returns the fast harness configuration.
func DefaultExpOptions() ExpOptions { return exp.DefaultOptions() }
