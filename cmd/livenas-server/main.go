// Command livenas-server runs a LiveNAS media server over real TCP: it
// accepts ingest connections keyed by channel (the RTMP stream-key
// analogue), decodes each incoming stream, trains that stream's
// super-resolution DNN online on the client's high-quality patches, applies
// it to the decoded frames, and reports the measured SR gain back to the
// client every training epoch. Admission is controlled against a simulated
// GPU pool of -gpus slots: a hello that would oversubscribe the pool (or
// reuse a live channel key) is refused with a MsgBye carrying the reason.
//
// The same listener is the distribution origin: a connection whose first
// message is MsgSubscribe (cmd/livenas-edge relays, or a viewer directly)
// is handed to the edge origin, which packages each live channel's
// enhanced output into rolling-playlist segments — one segment per
// training epoch, the SR-applied frame encoded at each ladder rung.
//
// Pair it with cmd/livenas-client and cmd/livenas-edge on the same machine:
//
//	livenas-server -listen :9455 -once=false -gpus 2 &
//	livenas-edge -connect 127.0.0.1:9455 -listen :9456 &
//	livenas-client -connect 127.0.0.1:9455 -channel alice -duration 20s &
//	livenas-edge -view alice -connect 127.0.0.1:9456
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the debug listener's mux
	"sync"
	"time"

	"livenas/internal/codec"
	"livenas/internal/edge"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/sr"
	"livenas/internal/telemetry"
	"livenas/internal/transport"
	"livenas/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", ":9455", "TCP listen address")
		epochLen = flag.Duration("epoch", 5*time.Second, "training epoch length (also the origin's segment duration)")
		once     = flag.Bool("once", true, "exit after the first ingest session")
		gpus     = flag.Int("gpus", 2, "simulated GPU pool size; each live session holds one slot")
		debug    = flag.String("debug", "", "optional HTTP debug listen address "+
			"(expvar at /debug/vars, registry snapshot at /debug/telemetry, "+
			"event trace at /debug/telemetry/events, pprof at /debug/pprof/)")
	)
	flag.Parse()

	reg := telemetry.New()
	if *debug != "" {
		if _, err := startDebug(*debug, reg); err != nil {
			log.Fatalf("debug listener: %v", err)
		}
	}

	node := &node{
		live:   map[string]bool{},
		pool:   sr.NewDevicePool(sr.RTX2080Ti(), *gpus),
		origin: edge.NewOrigin(edge.NewWallClock(), 6, edge.NewTelemetry(reg)),
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("livenas-server listening on %s (%d GPU slots)", ln.Addr(), node.pool.Total())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		if *once {
			serve(conn, *epochLen, reg, node)
			return
		}
		// One goroutine per session; the process's lifetime bounds them
		// (the server runs until killed in multi-session mode).
		go serve(conn, *epochLen, reg, node)
	}
}

// node is the server's multi-tenant admission state: the set of live
// channel keys and the simulated GPU pool they hold slots in. It is the
// runnable-demo counterpart of internal/fleet's virtual-clock Manager —
// same invariants (unique live keys, all-or-nothing slot admission),
// enforced against real concurrent connections instead of a planned
// timeline. It also owns the distribution origin every ingest session
// publishes its enhanced output into.
type node struct {
	mu     sync.Mutex
	live   map[string]bool
	pool   *sr.DevicePool
	origin *edge.Origin
}

// admit reserves the channel key and one GPU slot; a non-empty refusal
// reason means the session must be turned away.
func (n *node) admit(key string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.live[key] {
		return fmt.Sprintf("channel %q is already live", key)
	}
	if !n.pool.Acquire(1) {
		return fmt.Sprintf("GPU pool saturated (%d/%d slots held)", n.pool.InUse(), n.pool.Total())
	}
	n.live[key] = true
	return ""
}

// release frees the key and its slot when the session ends.
func (n *node) release(key string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.live, key)
	n.pool.Release(1)
}

// originLadder is the demo distribution ladder, scaled to the demo's
// 384x216 world like the client's bitrates are.
var originLadder = []edge.RungInfo{
	{Name: "low", Kbps: 100, EffectiveKbps: 100},
	{Name: "mid", Kbps: 200, EffectiveKbps: 200},
	{Name: "high", Kbps: 400, EffectiveKbps: 400},
}

// startDebug serves the process's introspection surface on its own HTTP
// listener and returns the bound address: expvar JSON (the telemetry
// snapshot is published as the "livenas" var), the registry's own JSON and
// JSONL endpoints, and pprof (registered on the default mux by the
// net/http/pprof import). Call it at most once per process — expvar and the
// default mux reject duplicate registrations.
func startDebug(addr string, reg *telemetry.Registry) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	expvar.Publish("livenas", expvar.Func(func() any { return reg.Snapshot() }))
	http.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			log.Printf("debug: telemetry write: %v", err)
		}
	})
	http.HandleFunc("/debug/telemetry/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := reg.WriteEvents(w); err != nil {
			log.Printf("debug: event write: %v", err)
		}
	})
	log.Printf("debug listener on http://%s (/debug/vars /debug/telemetry /debug/pprof/)", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("debug listener: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// serveEdge hands a subscriber connection to the origin: the first
// subscribe is replayed into the handler, then the connection pumps until
// it dies. Sends are queued so a slow subscriber never blocks publishes.
func serveEdge(tc *transport.NetConn, first *wire.Message, n *node) {
	qc := transport.NewQueuedConn(tc, 4<<20)
	defer qc.Close()
	//livenas:allow race-guard a received Message is owned by this connection's goroutine; Relay.mu guards relays' own state, not the wire type
	log.Printf("edge subscriber from %s (channel %q)", tc.RemoteAddr(), first.Channel)
	n.origin.Handle(qc, first)
	err := transport.Pump(qc, func(m *wire.Message) { n.origin.Handle(qc, m) })
	n.origin.RemoveConn(qc)
	log.Printf("edge subscriber %s gone: %v", tc.RemoteAddr(), err)
}

func serve(conn net.Conn, epochLen time.Duration, reg *telemetry.Registry, n *node) {
	tc := transport.NewNetConn(conn)
	defer tc.Close()
	log.Printf("session from %s", conn.RemoteAddr())

	hello, err := tc.Recv()
	if err != nil {
		log.Printf("bad first message: %v", err)
		return
	}
	if hello.Type == wire.MsgSubscribe {
		serveEdge(tc, hello, n)
		return
	}
	if hello.Type != wire.MsgHello {
		log.Printf("first message is %d, want hello or subscribe", hello.Type)
		return
	}
	channel := hello.Channel //livenas:allow race-guard a received Message is owned by this connection's goroutine until handed off
	if channel == "" {
		// Pre-channel clients still get a session; key it by peer address
		// so the admission bookkeeping stays uniform.
		channel = "anon/" + conn.RemoteAddr().String()
	}
	if reason := n.admit(channel); reason != "" {
		log.Printf("refusing %s (%s): %s", channel, conn.RemoteAddr(), reason)
		if err := tc.Send(&wire.Message{Type: wire.MsgBye, Channel: channel, Reason: reason}); err != nil {
			log.Printf("refusal write: %v", err)
		}
		return
	}
	defer n.release(channel)
	scale := hello.NativeW / hello.IngestW
	log.Printf("stream %s: ingest %dx%d -> native %dx%d (x%d), %.0f fps",
		channel, hello.IngestW, hello.IngestH, hello.NativeW, hello.NativeH, scale, hello.FPS)

	// The channel goes live on the distribution origin too: each epoch
	// publishes the SR-applied frame as one segment per ladder rung.
	n.origin.AddChannel(channel, epochLen, originLadder)
	segEncs := make([]*codec.Encoder, len(originLadder))
	for i := range segEncs {
		segEncs[i] = codec.NewEncoder(codec.Config{Profile: codec.BX8, W: hello.NativeW, H: hello.NativeH, KeyInterval: 1})
	}

	dec := codec.NewDecoder(codec.Config{Profile: codec.BX8, W: hello.IngestW, H: hello.IngestH})
	model := sr.NewModel(scale, sr.DefaultChannels, 1)
	trainer := sr.NewTrainer(model, sr.DefaultTrainConfig(), 2)
	proc := sr.NewProcessor(model, 1, sr.RTX2080Ti())
	trainer.SetTelemetry(reg)
	proc.SetTelemetry(reg)
	// The real server timestamps its telemetry events with session-relative
	// wall-clock time (there is no simulated clock here).
	start := time.Now() //livenas:allow determinism-taint real server stamps telemetry with wall-clock session time
	elapsed := func() time.Duration {
		return time.Since(start) //livenas:allow determinism-taint ditto
	}

	type patchPair struct{ lr, hr *frame.Frame }
	var (
		lastDecoded = map[int]*frame.Frame{}
		recent      []patchPair
		frames      int
		patches     int
		epochs      int
		epochTimer  = time.NewTicker(epochLen)
		lastFrame   *frame.Frame
	)
	defer epochTimer.Stop()

	msgs := make(chan *wire.Message)
	errc := make(chan error, 1)
	go func() {
		errc <- transport.Pump(tc, func(m *wire.Message) { msgs <- m })
	}()

	for {
		select {
		case err := <-errc:
			log.Printf("session %s ended after %d frames, %d patches, %d epochs: %v", channel, frames, patches, epochs, err)
			return
		case <-epochTimer.C:
			if trainer.SampleCount() == 0 {
				continue
			}
			loss := trainer.Epoch()
			epochs++
			proc.Sync(model)
			gain := 0.0
			for _, p := range recent {
				up := p.lr.ResizeBilinear(p.hr.W, p.hr.H)
				gain += metrics.PSNR(p.hr, model.SuperResolve(p.lr)) - metrics.PSNR(p.hr, up)
			}
			if len(recent) > 0 {
				gain /= float64(len(recent))
			}
			log.Printf("%s epoch %d: loss %.5f, SR gain on recent patches %+.2f dB (%d samples)",
				channel, epochs, loss, gain, trainer.SampleCount())
			reg.Emit(elapsed(), "train_epoch",
				telemetry.Str("channel", channel),
				telemetry.Num("epoch", float64(epochs)),
				telemetry.Num("samples", float64(trainer.SampleCount())),
				telemetry.Num("loss", loss),
				telemetry.Num("gain_cur_db", gain),
			)
			if err := tc.Send(&wire.Message{Type: wire.MsgStats, Channel: channel, GainDB: gain, Epochs: epochs, Samples: trainer.SampleCount()}); err != nil {
				log.Printf("session %s ended after %d frames, %d patches, %d epochs: stats write: %v", channel, frames, patches, epochs, err)
				return
			}
			if lastFrame != nil {
				out, lat := proc.Process(lastFrame)
				log.Printf("applied SR to latest frame: %dx%d (model-latency %v)", out.W, out.H, lat)
				// Publish the enhanced frame as this epoch's segment at
				// every ladder rung.
				payloads := make([][]byte, len(originLadder))
				for i, e := range segEncs {
					payloads[i] = e.Encode(out, int(originLadder[i].Kbps*1000*epochLen.Seconds())).Data
				}
				n.origin.Publish(channel, payloads)
			}
		case m := <-msgs:
			switch m.Type {
			case wire.MsgVideo:
				f, err := dec.Decode(&codec.EncodedFrame{Data: m.Data, Key: m.Key, QP: m.QP, Seq: m.FrameID})
				if err != nil {
					log.Printf("decode frame %d: %v", m.FrameID, err)
					continue
				}
				frames++
				lastFrame = f
				lastDecoded[m.FrameID] = f
				delete(lastDecoded, m.FrameID-100)
			case wire.MsgPatch:
				hr, err := codec.DecodePatch(m.Data)
				if err != nil {
					continue
				}
				lf, ok := lastDecoded[m.FrameID]
				if !ok {
					continue
				}
				lps := hr.W / scale
				lr := lf.Crop(m.X/scale, m.Y/scale, lps, lps)
				trainer.AddSample(lr, hr)
				recent = append(recent, patchPair{lr: lr, hr: hr})
				if len(recent) > 8 {
					recent = recent[1:]
				}
				patches++
			case wire.MsgBye:
				log.Printf("client %s done: %d frames, %d patches, %d epochs", channel, frames, patches, epochs)
				return
			case wire.MsgHello:
				log.Printf("duplicate hello mid-session; ignoring")
			case wire.MsgStats:
				// Stats flow server→client only; a client echo is ignored.
			default:
				// Edge messages never arrive on an ingest connection
				// (serveEdge owns those); tolerate and ignore.
			}
		}
	}
}
