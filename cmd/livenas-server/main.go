// Command livenas-server runs a LiveNAS media server over real TCP: it
// accepts one ingest connection, decodes the incoming stream, trains the
// super-resolution DNN online on the client's high-quality patches, applies
// it to the decoded frames, and reports the measured SR gain back to the
// client every training epoch.
//
// Pair it with cmd/livenas-client on the same machine:
//
//	livenas-server -listen :9455 &
//	livenas-client -connect 127.0.0.1:9455 -duration 20s
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"livenas/internal/codec"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/sr"
	"livenas/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", ":9455", "TCP listen address")
		epochLen = flag.Duration("epoch", 5*time.Second, "training epoch length")
		once     = flag.Bool("once", true, "exit after the first session")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("livenas-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		serve(conn, *epochLen)
		if *once {
			return
		}
	}
}

func serve(conn net.Conn, epochLen time.Duration) {
	defer conn.Close()
	log.Printf("ingest session from %s", conn.RemoteAddr())

	hello, err := wire.Read(conn)
	if err != nil || hello.Type != wire.MsgHello {
		log.Printf("bad hello: %v", err)
		return
	}
	scale := hello.NativeW / hello.IngestW
	log.Printf("stream: ingest %dx%d -> native %dx%d (x%d), %.0f fps",
		hello.IngestW, hello.IngestH, hello.NativeW, hello.NativeH, scale, hello.FPS)

	dec := codec.NewDecoder(codec.Config{Profile: codec.BX8, W: hello.IngestW, H: hello.IngestH})
	model := sr.NewModel(scale, sr.DefaultChannels, 1)
	trainer := sr.NewTrainer(model, sr.DefaultTrainConfig(), 2)
	proc := sr.NewProcessor(model, 1, sr.RTX2080Ti())

	type patchPair struct{ lr, hr *frame.Frame }
	var (
		lastDecoded = map[int]*frame.Frame{}
		recent      []patchPair
		frames      int
		patches     int
		epochs      int
		epochTimer  = time.NewTicker(epochLen)
		lastFrame   *frame.Frame
	)
	defer epochTimer.Stop()

	msgs := make(chan *wire.Message)
	errc := make(chan error, 1)
	go func() {
		for {
			m, err := wire.Read(conn)
			if err != nil {
				errc <- err
				return
			}
			msgs <- m
		}
	}()

	for {
		select {
		case err := <-errc:
			log.Printf("session ended after %d frames, %d patches, %d epochs: %v", frames, patches, epochs, err)
			return
		case <-epochTimer.C:
			if trainer.SampleCount() == 0 {
				continue
			}
			loss := trainer.Epoch()
			epochs++
			proc.Sync(model)
			gain := 0.0
			for _, p := range recent {
				up := p.lr.ResizeBilinear(p.hr.W, p.hr.H)
				gain += metrics.PSNR(p.hr, model.SuperResolve(p.lr)) - metrics.PSNR(p.hr, up)
			}
			if len(recent) > 0 {
				gain /= float64(len(recent))
			}
			log.Printf("epoch %d: loss %.5f, SR gain on recent patches %+.2f dB (%d samples)",
				epochs, loss, gain, trainer.SampleCount())
			if err := wire.Write(conn, &wire.Message{Type: wire.MsgStats, GainDB: gain, Epochs: epochs, Samples: trainer.SampleCount()}); err != nil {
				log.Printf("session ended after %d frames, %d patches, %d epochs: stats write: %v", frames, patches, epochs, err)
				return
			}
			if lastFrame != nil {
				out, lat := proc.Process(lastFrame)
				log.Printf("applied SR to latest frame: %dx%d (model-latency %v)", out.W, out.H, lat)
			}
		case m := <-msgs:
			switch m.Type {
			case wire.MsgVideo:
				f, err := dec.Decode(&codec.EncodedFrame{Data: m.Data, Key: m.Key, QP: m.QP, Seq: m.FrameID})
				if err != nil {
					log.Printf("decode frame %d: %v", m.FrameID, err)
					continue
				}
				frames++
				lastFrame = f
				lastDecoded[m.FrameID] = f
				delete(lastDecoded, m.FrameID-100)
			case wire.MsgPatch:
				hr, err := codec.DecodePatch(m.Data)
				if err != nil {
					continue
				}
				lf, ok := lastDecoded[m.FrameID]
				if !ok {
					continue
				}
				lps := hr.W / scale
				lr := lf.Crop(m.X/scale, m.Y/scale, lps, lps)
				trainer.AddSample(lr, hr)
				recent = append(recent, patchPair{lr: lr, hr: hr})
				if len(recent) > 8 {
					recent = recent[1:]
				}
				patches++
			case wire.MsgBye:
				log.Printf("client done: %d frames, %d patches, %d epochs", frames, patches, epochs)
				return
			case wire.MsgHello:
				log.Printf("duplicate hello mid-session; ignoring")
			case wire.MsgStats:
				// Stats flow server→client only; a client echo is ignored.
			}
		}
	}
}
