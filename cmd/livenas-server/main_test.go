package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"livenas/internal/telemetry"
)

// TestDebugListener boots the -debug HTTP listener on an ephemeral port and
// checks each surface: expvar JSON with the published telemetry snapshot,
// the registry's own snapshot and JSONL event endpoints, and pprof.
func TestDebugListener(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("core_frames_decoded").Add(3)
	reg.Emit(time.Second, "trainer_state", telemetry.Str("state", "training"))

	addr, err := startDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("startDebug: %v", err)
	}
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(vars["livenas"], &snap); err != nil {
		t.Fatalf("livenas expvar is not a snapshot: %v", err)
	}
	if snap.Counters["core_frames_decoded"] != 3 {
		t.Fatalf("expvar snapshot counters = %v, want core_frames_decoded=3", snap.Counters)
	}

	if err := json.Unmarshal([]byte(get("/debug/telemetry")), &snap); err != nil {
		t.Fatalf("/debug/telemetry is not a snapshot: %v", err)
	}

	events := strings.TrimSpace(get("/debug/telemetry/events"))
	var ev map[string]any
	if err := json.Unmarshal([]byte(events), &ev); err != nil {
		t.Fatalf("/debug/telemetry/events line %q not JSON: %v", events, err)
	}
	if ev["type"] != "trainer_state" {
		t.Fatalf("event type = %v, want trainer_state", ev["type"])
	}

	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
}
