// Command livenas-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	livenas-bench -list
//	livenas-bench -fig fig9
//	livenas-bench -all
//	livenas-bench -all -full          # full-scale (slow) mode
//	livenas-bench -fig fig20 -seed 3  # sensitivity re-run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"livenas/internal/exp"
	"livenas/internal/telemetry"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		fig     = flag.String("fig", "", "run one experiment by id")
		all     = flag.Bool("all", false, "run every experiment")
		full    = flag.Bool("full", false, "full-scale mode (slower, larger frames)")
		seed    = flag.Int64("seed", 0, "seed offset for sensitivity runs")
		traces  = flag.Int("traces", 0, "traces per data point (0 = default)")
		dur     = flag.Duration("dur", 0, "per-session stream duration (0 = default)")
		timings = flag.Bool("time", true, "print per-experiment wall time")
		summary = flag.String("summary", "", "run one representative LiveNAS session and write its telemetry summary JSON to this file")
	)
	flag.Parse()

	o := exp.DefaultOptions()
	o.Fast = !*full
	o.Seed = *seed
	o.Traces = *traces
	o.Duration = *dur

	switch {
	case *summary != "":
		s := exp.RunSummary(o)
		if err := telemetry.WriteSummaryFile(*summary, s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry summary written to %s (scheme %s, duty cycle %.2f, infer p50 %.2f ms)\n",
			*summary, s.Scheme, s.TrainerDutyCycle, s.InferP50MS)
	case *list:
		for _, e := range exp.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Desc)
		}
	case *fig != "":
		e, err := exp.Find(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runOne(e, o, *timings)
	case *all:
		for _, e := range exp.Registry {
			runOne(e, o, *timings)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne runs one experiment, optionally reporting how long it took.
//
//livenas:allow determinism wall-clock timing report only; never feeds results
func runOne(e exp.Experiment, o exp.Options, timings bool) {
	start := time.Now()
	for _, t := range e.Run(o) {
		fmt.Println(t)
	}
	if timings {
		fmt.Printf("[%s finished in %v]\n\n", e.ID, time.Since(start).Truncate(time.Millisecond))
	}
}
