// Command livenas-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	livenas-bench -list
//	livenas-bench -fig fig9
//	livenas-bench -all
//	livenas-bench -all -full          # full-scale (slow) mode
//	livenas-bench -fig fig20 -seed 3  # sensitivity re-run
//	livenas-bench -all -parallel 8 -cache-dir .livenas-cache
//
// Each experiment's sessions run on a sweep engine: -parallel bounds how
// many execute concurrently (0 = GOMAXPROCS) and -cache-dir persists
// session results so re-runs skip already-computed sessions. Results are
// byte-identical for any -parallel value and for warm or cold caches.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"livenas/internal/exp"
	"livenas/internal/sweep"
	"livenas/internal/telemetry"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		fig        = flag.String("fig", "", "run one experiment by id")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "full-scale mode (slower, larger frames)")
		seed       = flag.Int64("seed", 0, "seed offset for sensitivity runs")
		traces     = flag.Int("traces", 0, "traces per data point (0 = default)")
		dur        = flag.Duration("dur", 0, "per-session stream duration (0 = default)")
		timings    = flag.Bool("time", true, "print per-experiment wall time and sweep stats")
		parallel   = flag.Int("parallel", 0, "concurrent sessions per sweep (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "session-result cache directory (empty = no cache)")
		summary    = flag.String("summary", "", "run one representative LiveNAS session and write its telemetry summary JSON to this file")
		sweepBench = flag.String("sweepbench", "", "time a fixed sweep serially and in parallel, write the JSON record to this file")
		quant      = flag.Bool("quant", false, "route inference through the int8-quantized fast path (0.5 dB online quality gate)")
		anytime    = flag.Duration("anytime", 0, "per-frame anytime-scheduling deadline, e.g. 33ms (0 = off; implies patch-level int8/f32/bilinear mixing)")
	)
	flag.Parse()

	o := exp.DefaultOptions()
	o.Fast = !*full
	o.Seed = *seed
	o.Traces = *traces
	o.Duration = *dur
	o.QuantInt8 = *quant
	o.AnytimeBudget = *anytime

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cache *sweep.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = sweep.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch {
	case *summary != "":
		s := exp.RunSummary(o)
		if err := telemetry.WriteSummaryFile(*summary, s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry summary written to %s (scheme %s, duty cycle %.2f, infer p50 %.2f ms)\n",
			*summary, s.Scheme, s.TrainerDutyCycle, s.InferP50MS)
	case *sweepBench != "":
		if err := runSweepBench(ctx, *sweepBench, o, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *list:
		for _, e := range exp.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Desc)
		}
	case *fig != "":
		e, err := exp.Find(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runOne(ctx, e, o, *parallel, cache, *timings)
	case *all:
		for _, e := range exp.Registry {
			runOne(ctx, e, o, *parallel, cache, *timings)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne runs one experiment on a fresh sweep runner (so per-sweep stats
// are per-experiment; the cache is shared across experiments).
//
//livenas:allow determinism-taint wall-clock timing report only; never feeds results
func runOne(ctx context.Context, e exp.Experiment, o exp.Options, workers int, cache *sweep.Cache, timings bool) {
	start := time.Now()
	r := sweep.New(ctx, sweep.Options{Workers: workers, Cache: cache})
	defer func() {
		// A cancelled sweep surfaces as a panic from the figure generator
		// (the table contract has no error channel); exit 130 like any
		// interrupted CLI instead of dumping the panic.
		if p := recover(); p != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "[%s interrupted: %v]\n", e.ID, ctx.Err())
				os.Exit(130)
			}
			panic(p)
		}
	}()
	for _, t := range e.Run(ctx, o, r) {
		fmt.Println(t)
	}
	if timings {
		s := r.Stats()
		fmt.Printf("[%s finished in %v: %d sessions (%d executed, %d cached, %d shared), %v simulated GPU, %d workers]\n\n",
			e.ID, time.Since(start).Truncate(time.Millisecond),
			s.Submitted, s.Executed, s.Cached, s.Submitted-s.Started,
			s.SimGPU.Truncate(time.Millisecond), s.Workers)
	}
}

// sweepBenchRecord is the JSON layout of BENCH_sweep.json: the serial and
// parallel wall clock of the same fixed sweep. cmd/bench-compare gates on
// the speedup ratio, which cancels host speed.
type sweepBenchRecord struct {
	Schema   int     `json:"schema"`
	Sessions int     `json:"sessions"`
	Workers  int     `json:"workers"`
	SerialS  float64 `json:"serial_s"`
	ParallS  float64 `json:"parallel_s"`
	Speedup  float64 `json:"speedup"`
}

// runSweepBench times exp.SweepBenchGrid with one worker and with the full
// worker set, then writes the record to path.
//
//livenas:allow determinism-taint wall-clock benchmark record; never feeds results
func runSweepBench(ctx context.Context, path string, o exp.Options, workers int) error {
	grid := exp.SweepBenchGrid(o)
	run := func(w int) (time.Duration, sweep.Stats, error) {
		start := time.Now()
		r := sweep.New(ctx, sweep.Options{Workers: w})
		r.GoGrid(grid)
		_, err := r.Collect()
		return time.Since(start), r.Stats(), err
	}
	// Serial first: it also warms process-wide lazy state (shared kernel
	// pool, generic-model cache), so the parallel leg measures concurrency
	// rather than first-touch costs.
	serial, _, err := run(1)
	if err != nil {
		return err
	}
	parallel, stats, err := run(workers)
	if err != nil {
		return err
	}
	rec := sweepBenchRecord{
		Schema:   1,
		Sessions: stats.Executed,
		Workers:  stats.Workers,
		SerialS:  serial.Seconds(),
		ParallS:  parallel.Seconds(),
		Speedup:  serial.Seconds() / parallel.Seconds(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep bench: %d sessions, serial %.2fs, parallel(%d) %.2fs, speedup x%.2f -> %s\n",
		rec.Sessions, rec.SerialS, rec.Workers, rec.ParallS, rec.Speedup, path)
	return nil
}
