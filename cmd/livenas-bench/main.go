// Command livenas-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	livenas-bench -list
//	livenas-bench -fig fig9
//	livenas-bench -all
//	livenas-bench -all -full          # full-scale (slow) mode
//	livenas-bench -fig fig20 -seed 3  # sensitivity re-run
//	livenas-bench -all -parallel 8 -cache-dir .livenas-cache
//
// Each experiment's sessions run on a sweep engine: -parallel bounds how
// many execute concurrently (0 = GOMAXPROCS) and -cache-dir persists
// session results so re-runs skip already-computed sessions. Results are
// byte-identical for any -parallel value and for warm or cold caches.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"time"

	"livenas/internal/edge"
	"livenas/internal/exp"
	"livenas/internal/fleet"
	"livenas/internal/sweep"
	"livenas/internal/telemetry"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		fig        = flag.String("fig", "", "run one experiment by id")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "full-scale mode (slower, larger frames)")
		seed       = flag.Int64("seed", 0, "seed offset for sensitivity runs")
		traces     = flag.Int("traces", 0, "traces per data point (0 = default)")
		dur        = flag.Duration("dur", 0, "per-session stream duration (0 = default)")
		timings    = flag.Bool("time", true, "print per-experiment wall time and sweep stats")
		parallel   = flag.Int("parallel", 0, "concurrent sessions per sweep (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "session-result cache directory (empty = no cache)")
		summary    = flag.String("summary", "", "run one representative LiveNAS session and write its telemetry summary JSON to this file")
		sweepBench = flag.String("sweepbench", "", "time a fixed sweep serially and in parallel, write the JSON record to this file")
		fleetN     = flag.Int("fleet", 0, "fleet experiment streamer count N (0 = default 6)")
		gpus       = flag.Int("gpus", 0, "fleet experiment GPU-pool size M (0 = default 2)")
		fleetBench = flag.String("fleetbench", "", "time the fixed fleet plan serially and in parallel, write the JSON record to this file")
		edgeBench  = flag.String("edgebench", "", "time the fixed edge fan-out plan serially and in parallel, write the JSON record to this file")
		quant      = flag.Bool("quant", false, "route inference through the int8-quantized fast path (0.5 dB online quality gate)")
		anytime    = flag.Duration("anytime", 0, "per-frame anytime-scheduling deadline, e.g. 33ms (0 = off; implies patch-level int8/f32/bilinear mixing)")
	)
	flag.Parse()

	o := exp.DefaultOptions()
	o.Fast = !*full
	o.Seed = *seed
	o.Traces = *traces
	o.Duration = *dur
	o.QuantInt8 = *quant
	o.AnytimeBudget = *anytime
	o.FleetStreams = *fleetN
	o.FleetGPUs = *gpus

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cache *sweep.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = sweep.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch {
	case *summary != "":
		s := exp.RunSummary(o)
		if err := telemetry.WriteSummaryFile(*summary, s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry summary written to %s (scheme %s, duty cycle %.2f, infer p50 %.2f ms)\n",
			*summary, s.Scheme, s.TrainerDutyCycle, s.InferP50MS)
	case *sweepBench != "":
		if err := runSweepBench(ctx, *sweepBench, o, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *fleetBench != "":
		if err := runFleetBench(ctx, *fleetBench, o, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *edgeBench != "":
		if err := runEdgeBench(*edgeBench, o, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *list:
		for _, e := range exp.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Desc)
		}
	case *fig != "":
		e, err := exp.Find(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runOne(ctx, e, o, *parallel, cache, *timings)
	case *all:
		for _, e := range exp.Registry {
			runOne(ctx, e, o, *parallel, cache, *timings)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne runs one experiment on a fresh sweep runner (so per-sweep stats
// are per-experiment; the cache is shared across experiments).
//
//livenas:allow determinism-taint wall-clock timing report only; never feeds results
func runOne(ctx context.Context, e exp.Experiment, o exp.Options, workers int, cache *sweep.Cache, timings bool) {
	start := time.Now()
	r := sweep.New(ctx, sweep.Options{Workers: workers, Cache: cache})
	defer func() {
		// A cancelled sweep surfaces as a panic from the figure generator
		// (the table contract has no error channel); exit 130 like any
		// interrupted CLI instead of dumping the panic.
		if p := recover(); p != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "[%s interrupted: %v]\n", e.ID, ctx.Err())
				os.Exit(130)
			}
			panic(p)
		}
	}()
	for _, t := range e.Run(ctx, o, r) {
		fmt.Println(t)
	}
	if timings {
		s := r.Stats()
		fmt.Printf("[%s finished in %v: %d sessions (%d executed, %d cached, %d shared), %v simulated GPU, %d workers]\n\n",
			e.ID, time.Since(start).Truncate(time.Millisecond),
			s.Submitted, s.Executed, s.Cached, s.Submitted-s.Started,
			s.SimGPU.Truncate(time.Millisecond), s.Workers)
	}
}

// sweepBenchRecord is the JSON layout of BENCH_sweep.json: the serial and
// parallel wall clock of the same fixed sweep. cmd/bench-compare gates on
// the speedup ratio, which cancels host speed.
type sweepBenchRecord struct {
	Schema   int     `json:"schema"`
	Sessions int     `json:"sessions"`
	Workers  int     `json:"workers"`
	SerialS  float64 `json:"serial_s"`
	ParallS  float64 `json:"parallel_s"`
	Speedup  float64 `json:"speedup"`
}

// runSweepBench times exp.SweepBenchGrid with one worker and with the full
// worker set, then writes the record to path.
//
//livenas:allow determinism-taint wall-clock benchmark record; never feeds results
func runSweepBench(ctx context.Context, path string, o exp.Options, workers int) error {
	grid := exp.SweepBenchGrid(o)
	run := func(w int) (time.Duration, sweep.Stats, error) {
		start := time.Now()
		r := sweep.New(ctx, sweep.Options{Workers: w})
		r.GoGrid(grid)
		_, err := r.Collect()
		return time.Since(start), r.Stats(), err
	}
	// Serial first: it also warms process-wide lazy state (shared kernel
	// pool, generic-model cache), so the parallel leg measures concurrency
	// rather than first-touch costs.
	serial, _, err := run(1)
	if err != nil {
		return err
	}
	parallel, stats, err := run(workers)
	if err != nil {
		return err
	}
	rec := sweepBenchRecord{
		Schema:   1,
		Sessions: stats.Executed,
		Workers:  stats.Workers,
		SerialS:  serial.Seconds(),
		ParallS:  parallel.Seconds(),
		Speedup:  serial.Seconds() / parallel.Seconds(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep bench: %d sessions, serial %.2fs, parallel(%d) %.2fs, speedup x%.2f -> %s\n",
		rec.Sessions, rec.SerialS, rec.Workers, rec.ParallS, rec.Speedup, path)
	return nil
}

// fleetBenchRecord is the JSON layout of BENCH_fleet.json: the serial and
// parallel wall clock of executing the same fixed fleet admission plan,
// plus the plan's virtual-time p99 admission latency. AdmitP99MS is pure
// simulated time — identical on every host — so cmd/bench-compare checks
// it for exact equality (a cross-host determinism pin), while the speedup
// ratio is gated with noise tolerance like the sweep record.
type fleetBenchRecord struct {
	Schema      int     `json:"schema"`
	Streams     int     `json:"streams"`
	GPUs        int     `json:"gpus"`
	Sessions    int     `json:"sessions"`
	Workers     int     `json:"workers"`
	SerialS     float64 `json:"serial_s"`
	ParallS     float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	SerialSPS   float64 `json:"sessions_per_sec_serial"`
	ParallelSPS float64 `json:"sessions_per_sec_parallel"`
	AdmitP99MS  float64 `json:"admit_p99_ms"`
}

// runFleetBench executes exp.FleetBenchPlan with one worker and with the
// full worker set, then writes the record to path.
//
//livenas:allow determinism-taint wall-clock benchmark record; never feeds results
func runFleetBench(ctx context.Context, path string, o exp.Options, workers int) error {
	run := func(w int) (time.Duration, *fleet.Plan, int, error) {
		p, err := exp.FleetBenchPlan(o)
		if err != nil {
			return 0, nil, 0, err
		}
		start := time.Now()
		r := sweep.New(ctx, sweep.Options{Workers: w})
		p.Submit(r)
		if err := p.Collect(); err != nil {
			return 0, nil, 0, err
		}
		return time.Since(start), p, r.Stats().Workers, nil
	}
	// Serial first warms process-wide lazy state, like runSweepBench.
	serial, plan, _, err := run(1)
	if err != nil {
		return err
	}
	parallel, _, nworkers, err := run(workers)
	if err != nil {
		return err
	}
	st := plan.Stats()
	sessions := st.Admitted + st.Degraded
	rec := fleetBenchRecord{
		Schema:      1,
		Streams:     st.Streams,
		GPUs:        plan.M.Pool().Total(),
		Sessions:    sessions,
		Workers:     nworkers,
		SerialS:     serial.Seconds(),
		ParallS:     parallel.Seconds(),
		Speedup:     serial.Seconds() / parallel.Seconds(),
		SerialSPS:   float64(sessions) / serial.Seconds(),
		ParallelSPS: float64(sessions) / parallel.Seconds(),
		AdmitP99MS:  float64(st.AdmitP99) / float64(time.Millisecond),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet bench: %d streams on %d GPUs, %d sessions, serial %.2fs, parallel(%d) %.2fs, speedup x%.2f, admit p99 %.0fms -> %s\n",
		rec.Streams, rec.GPUs, rec.Sessions, rec.SerialS, rec.Workers, rec.ParallS, rec.Speedup, rec.AdmitP99MS, path)
	return nil
}

// edgeBenchRecord is the JSON layout of BENCH_edge.json: the serial and
// parallel wall clock of running the same fixed edge fan-out plan, plus
// the plan's worst virtual-time delivery p99. SegP99MS is pure simulated
// time — identical on every host — so cmd/bench-compare checks it for
// exact equality (a cross-host determinism pin), while the speedup ratio
// is gated with noise tolerance like the sweep and fleet records.
type edgeBenchRecord struct {
	Schema      int     `json:"schema"`
	Sims        int     `json:"sims"`
	Viewers     int     `json:"viewers"`
	Workers     int     `json:"workers"`
	SerialS     float64 `json:"serial_s"`
	ParallS     float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	SerialVPS   float64 `json:"viewers_per_sec_serial"`
	ParallelVPS float64 `json:"viewers_per_sec_parallel"`
	Delivered   int     `json:"delivered"`
	SegP99MS    float64 `json:"seg_p99_ms"`
}

// runEdgeBench executes exp.EdgeBenchPlan serially and across a worker
// pool, then writes the record to path. Each sim is single-threaded on
// its own virtual clock, so the pool parallelises across sims.
//
//livenas:allow determinism-taint wall-clock benchmark record; never feeds results
func runEdgeBench(path string, o exp.Options, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	plan := exp.EdgeBenchPlan(o)
	if workers > len(plan) {
		workers = len(plan)
	}
	run := func(w int) (time.Duration, []*edge.Result, error) {
		start := time.Now()
		results := make([]*edge.Result, len(plan))
		errs := make([]error, len(plan))
		sem := make(chan struct{}, w)
		var wg sync.WaitGroup
		for i := range plan {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], errs[i] = edge.RunSim(plan[i])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, nil, err
			}
		}
		return time.Since(start), results, nil
	}
	// Serial first warms process-wide lazy state, like runSweepBench.
	serial, results, err := run(1)
	if err != nil {
		return err
	}
	parallel, _, err := run(workers)
	if err != nil {
		return err
	}
	var viewers, delivered int
	var p99 time.Duration
	for _, r := range results {
		viewers += r.Viewers
		delivered += r.Delivered
		if r.DeliveryP99 > p99 {
			p99 = r.DeliveryP99
		}
	}
	rec := edgeBenchRecord{
		Schema:      1,
		Sims:        len(plan),
		Viewers:     viewers,
		Workers:     workers,
		SerialS:     serial.Seconds(),
		ParallS:     parallel.Seconds(),
		Speedup:     serial.Seconds() / parallel.Seconds(),
		SerialVPS:   float64(viewers) / serial.Seconds(),
		ParallelVPS: float64(viewers) / parallel.Seconds(),
		Delivered:   delivered,
		SegP99MS:    float64(p99) / float64(time.Millisecond),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("edge bench: %d sims, %d viewers, serial %.2fs, parallel(%d) %.2fs, speedup x%.2f, seg p99 %.1fms -> %s\n",
		rec.Sims, rec.Viewers, rec.SerialS, rec.Workers, rec.ParallS, rec.Speedup, rec.SegP99MS, path)
	return nil
}
