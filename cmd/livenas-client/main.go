// Command livenas-client runs a LiveNAS ingest client over real TCP: it
// captures synthetic live video, encodes it at the ingest resolution, and
// uploads the stream plus high-quality training patches to livenas-server.
package main

import (
	"flag"
	"log"
	"math/rand"
	"time"

	"livenas/internal/codec"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/transport"
	"livenas/internal/vidgen"
	"livenas/internal/wire"
)

func main() {
	var (
		connect  = flag.String("connect", "127.0.0.1:9455", "server address")
		duration = flag.Duration("duration", 20*time.Second, "stream duration")
		fps      = flag.Float64("fps", 10, "frame rate")
		kbps     = flag.Float64("kbps", 400, "video bitrate")
		cat      = flag.String("category", "JC", "content category (LoL, JC, WoW, EFT, FN, PC, SP, LE, FC)")
		seed     = flag.Int64("seed", 7, "session seed")
		channel  = flag.String("channel", "demo", "channel key identifying this stream to the server")
	)
	flag.Parse()

	category := vidgen.JustChatting
	for _, c := range vidgen.Categories() {
		if c.String() == *cat {
			category = c
		}
	}

	conn, err := transport.Dial(*connect)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer conn.Close()

	const (
		nativeW, nativeH = 384, 216
		scale            = 2
		patchSize        = 24
	)
	ingestW, ingestH := nativeW/scale, nativeH/scale
	if err := conn.Send(&wire.Message{
		Type:    wire.MsgHello,
		Channel: *channel,
		IngestW: ingestW, IngestH: ingestH,
		NativeW: nativeW, NativeH: nativeH,
		FPS: *fps,
	}); err != nil {
		log.Fatalf("hello: %v", err)
	}

	// Drain server stats in the background; a MsgBye here is the server
	// refusing admission (duplicate channel key or saturated GPU pool).
	go transport.Pump(conn, func(m *wire.Message) {
		switch m.Type {
		case wire.MsgStats:
			log.Printf("server: epoch %d, SR gain %+.2f dB (%d samples)", m.Epochs, m.GainDB, m.Samples)
		case wire.MsgBye:
			log.Fatalf("server refused channel %q: %s", *channel, m.Reason)
		default:
			// Hello/video/patch flow client→server only; ignore echoes.
		}
	})

	src := vidgen.NewSource(category, nativeW, nativeH, *seed, duration.Seconds()+10)
	enc := codec.NewEncoder(codec.Config{Profile: codec.BX8, W: ingestW, H: ingestH, KeyInterval: int(*fps * 4)})
	cells := frame.Grid(nativeW, nativeH, patchSize)
	rng := rand.New(rand.NewSource(*seed))

	frameGap := time.Duration(float64(time.Second) / *fps)
	start := time.Now() //livenas:allow determinism-taint real-time pacing is the point of the live client
	frameID := 0
	ticker := time.NewTicker(frameGap)
	defer ticker.Stop()
	for now := range ticker.C {
		t := now.Sub(start)
		if t > *duration {
			break
		}
		raw := src.FrameAt(t.Seconds())
		lr := raw.Downscale(scale)
		ef := enc.Encode(lr, int(*kbps*1000 / *fps))
		if err := conn.Send(&wire.Message{
			Type: wire.MsgVideo, FrameID: frameID, Key: ef.Key, QP: ef.QP, Data: ef.Data,
		}); err != nil {
			log.Fatalf("send frame: %v", err)
		}
		// Two patches per second, quality-filtered (§5.2).
		if frameID%int(*fps/2+1) == 0 {
			recon := enc.Reconstructed()
			frameQ := metrics.PSNR(lr, recon)
			for _, ci := range rng.Perm(len(cells)) {
				cell := cells[ci]
				lp := patchSize / scale
				q := metrics.PSNR(
					lr.Crop(cell.X/scale, cell.Y/scale, lp, lp),
					recon.Crop(cell.X/scale, cell.Y/scale, lp, lp))
				if q >= frameQ {
					continue
				}
				hr := raw.Crop(cell.X, cell.Y, patchSize, patchSize)
				if err := conn.Send(&wire.Message{
					Type: wire.MsgPatch, FrameID: frameID, X: cell.X, Y: cell.Y,
					Data: codec.EncodePatch(hr, codec.PatchQuality),
				}); err != nil {
					log.Fatalf("send patch: %v", err)
				}
				break
			}
		}
		frameID++
	}
	if err := conn.Send(&wire.Message{Type: wire.MsgBye}); err != nil {
		log.Printf("bye: %v", err)
	}
	log.Printf("streamed %d frames over %v", //livenas:allow determinism-taint real-time client reports wall-clock duration
		frameID, time.Since(start).Truncate(time.Millisecond))
}
