// Command bench-compare is the CI bench-regression gate. It compares a
// fresh run of the tracked kernel benchmarks (scripts/bench.sh -short)
// against the committed baseline BENCH_kernels.json and fails when any
// tracked bench — conv forward/backward, train epoch, 1080p inference —
// has regressed beyond the noise threshold.
//
// The compared figure is the kernel-vs-ref *speedup ratio*, not absolute
// ns/op: both variants run in the same process on the same machine, so the
// ratio cancels host speed and lets a laptop run validate against a
// baseline recorded elsewhere. Because -short runs each bench once, a
// single noisy scheduling event can dent one ratio; a failing comparison
// is retried with a fresh bench run (best ratio per bench wins) before the
// gate reports a regression.
//
// Usage:
//
//	bench-compare                         # run bench.sh -short, compare vs BENCH_kernels.json
//	bench-compare -current out.json       # compare an existing result file instead
//	bench-compare -threshold 0.25         # custom noise allowance (or env BENCH_NOISE)
//	bench-compare -summary run.json       # instead: validate a telemetry run-summary file
//	bench-compare -sweep                  # instead: gate the sweep-engine parallel speedup
//	                                      # (livenas-bench -sweepbench) vs BENCH_sweep.json
//	bench-compare -vet                    # instead: gate the vet engine's warm-cache
//	                                      # speedup (livenas-vet -bench) vs BENCH_vet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"

	"livenas/internal/telemetry"
)

// variant mirrors one kernel/ref entry of scripts/bench.sh's JSON.
type variant struct {
	NsOp     float64 `json:"ns_op"`
	MBs      float64 `json:"mb_s"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type entry struct {
	Kernel          variant `json:"kernel"`
	Ref             variant `json:"ref"`
	Speedup         float64 `json:"speedup"`
	AllocsReduction float64 `json:"allocs_reduction"`
}

type benchFile struct {
	GeneratedBy string           `json:"generated_by"`
	Go          string           `json:"go"`
	Short       bool             `json:"short"`
	Benches     map[string]entry `json:"benches"`
}

// tracked is the gate's bench set; a baseline or current file missing any
// of these is an error, not a silent pass.
var tracked = []string{
	"conv_forward", "conv_backward", "train_epoch", "inference_1080p",
	"inference_1080p_int8", "inference_4k",
}

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_kernels.json", "committed baseline JSON")
		current   = flag.String("current", "", "pre-recorded bench JSON to compare (default: run scripts/bench.sh -short)")
		threshold = flag.Float64("threshold", defaultThreshold(), "allowed fractional speedup drop before failing (env BENCH_NOISE overrides the default)")
		retries   = flag.Int("retries", 2, "extra bench runs on failure; best speedup per bench wins")
		summary   = flag.String("summary", "", "validate a telemetry run-summary JSON file instead of comparing benches")
		sweep     = flag.Bool("sweep", false, "gate the sweep-engine parallel speedup instead of the kernel benches")
		sweepBase = flag.String("sweep-baseline", "BENCH_sweep.json", "committed sweep-speedup baseline JSON")
		sweepCur  = flag.String("sweep-current", "", "pre-recorded sweepbench JSON to compare (default: run cmd/livenas-bench -sweepbench)")
		vet       = flag.Bool("vet", false, "gate the vet engine's warm-cache speedup instead of the kernel benches")
		vetBase   = flag.String("vet-baseline", "BENCH_vet.json", "committed vet-engine baseline JSON")
		vetCur    = flag.String("vet-current", "", "pre-recorded livenas-vet -bench JSON to compare (default: run one)")
		fleet     = flag.Bool("fleet", false, "gate the fleet plan's throughput and admission determinism instead of the kernel benches")
		fleetBase = flag.String("fleet-baseline", "BENCH_fleet.json", "committed fleet baseline JSON")
		fleetCur  = flag.String("fleet-current", "", "pre-recorded fleetbench JSON to compare (default: run cmd/livenas-bench -fleetbench)")
		edge      = flag.Bool("edge", false, "gate the edge fan-out plan's throughput and delivery determinism instead of the kernel benches")
		edgeBase  = flag.String("edge-baseline", "BENCH_edge.json", "committed edge baseline JSON")
		edgeCur   = flag.String("edge-current", "", "pre-recorded edgebench JSON to compare (default: run cmd/livenas-bench -edgebench)")
	)
	flag.Parse()

	if *summary != "" {
		if err := validateSummary(*summary); err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: summary %s: %v\n", *summary, err)
			os.Exit(1)
		}
		return
	}

	if *sweep {
		if err := sweepGate(*sweepBase, *sweepCur, *threshold, *retries); err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *vet {
		if err := vetGate(*vetBase, *vetCur, *threshold, *retries); err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: vet: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleet {
		if err := fleetGate(*fleetBase, *fleetCur, *threshold, *retries); err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: fleet: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *edge {
		if err := edgeGate(*edgeBase, *edgeCur, *threshold, *retries); err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: edge: %v\n", err)
			os.Exit(1)
		}
		return
	}

	base, err := readBenchFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: baseline: %v\n", err)
		os.Exit(1)
	}

	cur, err := currentBenches(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(1)
	}
	failed := compare(base, cur, *threshold)
	for attempt := 0; len(failed) > 0 && attempt < *retries && *current == ""; attempt++ {
		fmt.Printf("retrying (%d bench(es) below threshold; -short runs are noisy)\n", len(failed))
		again, err := currentBenches("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: retry: %v\n", err)
			os.Exit(1)
		}
		// Best-of: keep the higher speedup per bench across runs.
		for name, e := range again.Benches {
			if prev, ok := cur.Benches[name]; !ok || e.Speedup > prev.Speedup {
				cur.Benches[name] = e
			}
		}
		failed = compare(base, cur, *threshold)
	}

	report(base, cur, *threshold, failed)
	if len(failed) > 0 {
		os.Exit(1)
	}
}

func defaultThreshold() float64 {
	if s := os.Getenv("BENCH_NOISE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.15
}

func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, name := range tracked {
		e, ok := f.Benches[name]
		if !ok {
			return nil, fmt.Errorf("%s: tracked bench %q missing", path, name)
		}
		if e.Speedup <= 0 || e.Kernel.NsOp <= 0 || e.Ref.NsOp <= 0 {
			return nil, fmt.Errorf("%s: bench %q has non-positive timings", path, name)
		}
	}
	return &f, nil
}

// currentBenches loads path, or runs scripts/bench.sh -short into a temp
// file when path is empty.
func currentBenches(path string) (*benchFile, error) {
	if path != "" {
		return readBenchFile(path)
	}
	tmp, err := os.CreateTemp("", "bench_current_*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	cmd := exec.Command("scripts/bench.sh", "-short", "-o", tmp.Name())
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("scripts/bench.sh -short: %w", err)
	}
	return readBenchFile(tmp.Name())
}

// compare returns the tracked benches whose current speedup fell more than
// threshold below the baseline's. A tracked bench absent from either file is
// reported as failed explicitly: readBenchFile already rejects such files,
// but the gate must never turn a missing entry's zero value into a pass
// (e.g. if both sides dropped a key in the same edit).
func compare(base, cur *benchFile, threshold float64) []string {
	var failed []string
	for _, name := range tracked {
		b, okB := base.Benches[name]
		c, okC := cur.Benches[name]
		if !okB || !okC {
			fmt.Fprintf(os.Stderr, "bench-compare: tracked bench %q missing (baseline: %v, current: %v)\n", name, okB, okC)
			failed = append(failed, name)
			continue
		}
		if c.Speedup < b.Speedup*(1-threshold) {
			failed = append(failed, name)
		}
	}
	return failed
}

func report(base, cur *benchFile, threshold float64, failed []string) {
	bad := map[string]bool{}
	for _, name := range failed {
		bad[name] = true
	}
	fmt.Printf("%-16s %10s %10s %8s\n", "bench", "base x", "current x", "verdict")
	for _, name := range tracked {
		b, c := base.Benches[name], cur.Benches[name]
		verdict := "ok"
		if bad[name] {
			verdict = "REGRESSED"
		}
		fmt.Printf("%-16s %10.2f %10.2f %8s\n", name, b.Speedup, c.Speedup, verdict)
	}
	if len(failed) > 0 {
		fmt.Printf("bench-compare: %d bench(es) lost more than %.0f%% of their kernel-vs-ref speedup\n",
			len(failed), threshold*100)
	} else {
		fmt.Printf("bench-compare: all speedups within %.0f%% of baseline\n", threshold*100)
	}
}

// sweepRecord mirrors cmd/livenas-bench's -sweepbench JSON (BENCH_sweep.json).
type sweepRecord struct {
	Schema   int     `json:"schema"`
	Sessions int     `json:"sessions"`
	Workers  int     `json:"workers"`
	SerialS  float64 `json:"serial_s"`
	ParallS  float64 `json:"parallel_s"`
	Speedup  float64 `json:"speedup"`
}

func readSweepRecord(path string) (*sweepRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r sweepRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Sessions <= 0 || r.SerialS <= 0 || r.ParallS <= 0 || r.Speedup <= 0 {
		return nil, fmt.Errorf("%s: non-positive sweep figures: %+v", path, r)
	}
	return &r, nil
}

// currentSweep loads path, or records a fresh sweepbench run when empty.
func currentSweep(path string) (*sweepRecord, error) {
	if path != "" {
		return readSweepRecord(path)
	}
	tmp, err := os.CreateTemp("", "sweep_current_*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	cmd := exec.Command("go", "run", "./cmd/livenas-bench", "-sweepbench", tmp.Name())
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("livenas-bench -sweepbench: %w", err)
	}
	return readSweepRecord(tmp.Name())
}

// sweepGate compares the serial-vs-parallel speedup of the fixed sweep
// against the committed baseline. Like the kernel gate it compares a ratio
// measured within one process run, so host speed cancels; unlike it, the
// achievable ratio is bounded by the host's core count, so the baseline's
// speedup is first capped at the cores available here.
func sweepGate(basePath, curPath string, threshold float64, retries int) error {
	base, err := readSweepRecord(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cores := runtime.NumCPU()
	if cores < 2 {
		fmt.Println("sweep gate: single-core host, parallel speedup unmeasurable; skipping")
		return nil
	}
	want := base.Speedup
	if lim := float64(cores); want > lim {
		want = lim
	}
	want *= 1 - threshold
	cur, err := currentSweep(curPath)
	if err != nil {
		return err
	}
	for attempt := 0; cur.Speedup < want && attempt < retries && curPath == ""; attempt++ {
		fmt.Printf("sweep gate: speedup x%.2f below x%.2f, retrying (wall-clock runs are noisy)\n",
			cur.Speedup, want)
		again, err := currentSweep("")
		if err != nil {
			return fmt.Errorf("retry: %w", err)
		}
		if again.Speedup > cur.Speedup {
			cur = again
		}
	}
	fmt.Printf("sweep gate: %d sessions, %d workers: serial %.2fs / parallel %.2fs = x%.2f (baseline x%.2f, floor x%.2f)\n",
		cur.Sessions, cur.Workers, cur.SerialS, cur.ParallS, cur.Speedup, base.Speedup, want)
	if cur.Speedup < want {
		return fmt.Errorf("parallel sweep speedup x%.2f below floor x%.2f", cur.Speedup, want)
	}
	return nil
}

// vetRecord mirrors cmd/livenas-vet's -bench JSON (BENCH_vet.json).
type vetRecord struct {
	Schema          int     `json:"schema"`
	Cores           int     `json:"cores"`
	Jobs            int     `json:"jobs"`
	Packages        int     `json:"packages"`
	ColdJ1S         float64 `json:"cold_j1_s"`
	ColdJNS         float64 `json:"cold_jn_s"`
	WarmS           float64 `json:"warm_s"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

func readVetRecord(path string) (*vetRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r vetRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Packages <= 0 || r.ColdJNS <= 0 || r.WarmS <= 0 || r.WarmSpeedup <= 0 {
		return nil, fmt.Errorf("%s: non-positive vet figures: %+v", path, r)
	}
	return &r, nil
}

// currentVet loads path, or records a fresh livenas-vet -bench run when
// empty.
func currentVet(path string) (*vetRecord, error) {
	if path != "" {
		return readVetRecord(path)
	}
	tmp, err := os.CreateTemp("", "vet_current_*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	cmd := exec.Command("go", "run", "./cmd/livenas-vet", "-bench", tmp.Name(), "./...")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("livenas-vet -bench: %w", err)
	}
	return readVetRecord(tmp.Name())
}

// vetWarmFloor is the hard requirement on the incremental engine: a fully
// warm facts-cache run must be at least this much faster than a cold run.
// Unlike the other gates it is absolute, not baseline-relative — the cache
// either removes the load/type-check/analyze cost or it is broken — and it
// holds on a single core, where the parallel dimension is unmeasurable.
const vetWarmFloor = 2.0

// vetGate enforces the incremental-vet contract: warm-cache runs at least
// vetWarmFloor times faster than cold, and (on multi-core hosts) the
// parallel speedup within threshold of the committed baseline, capped at
// the cores available here.
func vetGate(basePath, curPath string, threshold float64, retries int) error {
	base, err := readVetRecord(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cores := runtime.NumCPU()
	parallelWant := 0.0
	if cores >= 2 {
		parallelWant = base.ParallelSpeedup
		if lim := float64(cores); parallelWant > lim {
			parallelWant = lim
		}
		parallelWant *= 1 - threshold
	}
	ok := func(r *vetRecord) bool {
		return r.WarmSpeedup >= vetWarmFloor && r.ParallelSpeedup >= parallelWant
	}
	cur, err := currentVet(curPath)
	if err != nil {
		return err
	}
	for attempt := 0; !ok(cur) && attempt < retries && curPath == ""; attempt++ {
		fmt.Printf("vet gate: warm x%.1f / parallel x%.2f below floors, retrying (wall-clock runs are noisy)\n",
			cur.WarmSpeedup, cur.ParallelSpeedup)
		again, err := currentVet("")
		if err != nil {
			return fmt.Errorf("retry: %w", err)
		}
		if again.WarmSpeedup > cur.WarmSpeedup {
			cur = again
		}
	}
	parallelNote := fmt.Sprintf("parallel x%.2f (floor x%.2f)", cur.ParallelSpeedup, parallelWant)
	if cores < 2 {
		parallelNote = "single-core host, parallel dimension skipped"
	}
	fmt.Printf("vet gate: %d packages: cold %.2fs -> warm %.3fs = x%.1f (floor x%.1f); %s\n",
		cur.Packages, cur.ColdJNS, cur.WarmS, cur.WarmSpeedup, vetWarmFloor, parallelNote)
	if cur.WarmSpeedup < vetWarmFloor {
		return fmt.Errorf("warm-cache speedup x%.1f below floor x%.1f", cur.WarmSpeedup, vetWarmFloor)
	}
	if cur.ParallelSpeedup < parallelWant {
		return fmt.Errorf("parallel speedup x%.2f below floor x%.2f (baseline x%.2f)", cur.ParallelSpeedup, parallelWant, base.ParallelSpeedup)
	}
	return nil
}

// fleetRecord mirrors cmd/livenas-bench's -fleetbench JSON (BENCH_fleet.json).
type fleetRecord struct {
	Schema      int     `json:"schema"`
	Streams     int     `json:"streams"`
	GPUs        int     `json:"gpus"`
	Sessions    int     `json:"sessions"`
	Workers     int     `json:"workers"`
	SerialS     float64 `json:"serial_s"`
	ParallS     float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	SerialSPS   float64 `json:"sessions_per_sec_serial"`
	ParallelSPS float64 `json:"sessions_per_sec_parallel"`
	AdmitP99MS  float64 `json:"admit_p99_ms"`
}

func readFleetRecord(path string) (*fleetRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r fleetRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Streams <= 0 || r.Sessions <= 0 || r.SerialS <= 0 || r.ParallS <= 0 || r.Speedup <= 0 {
		return nil, fmt.Errorf("%s: non-positive fleet figures: %+v", path, r)
	}
	return &r, nil
}

// currentFleet loads path, or records a fresh fleetbench run when empty.
// The streams/GPUs shape is pinned to the baseline's so both sides time the
// same plan.
func currentFleet(path string, base *fleetRecord) (*fleetRecord, error) {
	if path != "" {
		return readFleetRecord(path)
	}
	tmp, err := os.CreateTemp("", "fleet_current_*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	cmd := exec.Command("go", "run", "./cmd/livenas-bench",
		"-fleet", strconv.Itoa(base.Streams), "-gpus", strconv.Itoa(base.GPUs),
		"-fleetbench", tmp.Name())
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("livenas-bench -fleetbench: %w", err)
	}
	return readFleetRecord(tmp.Name())
}

// fleetGate compares the fleet plan's execution against the committed
// baseline on two axes. The parallel speedup (sessions/sec at NumCPU
// workers over workers=1) is gated like the sweep record — baseline capped
// at this host's cores, threshold noise allowed, skipped on a single core.
// The virtual-time p99 admission latency is pure simulated time, so it must
// match the baseline exactly on every host: a mismatch means the admission
// plan itself changed (or went nondeterministic), not that the host is slow.
func fleetGate(basePath, curPath string, threshold float64, retries int) error {
	base, err := readFleetRecord(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := currentFleet(curPath, base)
	if err != nil {
		return err
	}
	if cur.AdmitP99MS != base.AdmitP99MS {
		return fmt.Errorf("admission p99 %.3fms differs from baseline %.3fms: the virtual admission plan changed (simulated time cannot be host-dependent)",
			cur.AdmitP99MS, base.AdmitP99MS)
	}
	if cur.Sessions != base.Sessions {
		return fmt.Errorf("plan admitted %d sessions, baseline %d", cur.Sessions, base.Sessions)
	}
	cores := runtime.NumCPU()
	if cores < 2 {
		fmt.Printf("fleet gate: admission plan matches baseline (p99 %.0fms, %d sessions); single-core host, parallel speedup unmeasurable; skipping\n",
			base.AdmitP99MS, base.Sessions)
		return nil
	}
	want := base.Speedup
	if lim := float64(cores); want > lim {
		want = lim
	}
	want *= 1 - threshold
	for attempt := 0; cur.Speedup < want && attempt < retries && curPath == ""; attempt++ {
		fmt.Printf("fleet gate: speedup x%.2f below x%.2f, retrying (wall-clock runs are noisy)\n",
			cur.Speedup, want)
		again, err := currentFleet("", base)
		if err != nil {
			return fmt.Errorf("retry: %w", err)
		}
		if again.AdmitP99MS != base.AdmitP99MS {
			return fmt.Errorf("admission p99 %.3fms differs from baseline %.3fms on retry", again.AdmitP99MS, base.AdmitP99MS)
		}
		if again.Speedup > cur.Speedup {
			cur = again
		}
	}
	fmt.Printf("fleet gate: %d streams / %d GPUs, %d sessions, %d workers: %.2f -> %.2f sessions/s = x%.2f (baseline x%.2f, floor x%.2f); admit p99 %.0fms matches\n",
		cur.Streams, cur.GPUs, cur.Sessions, cur.Workers, cur.SerialSPS, cur.ParallelSPS, cur.Speedup, base.Speedup, want, cur.AdmitP99MS)
	if cur.Speedup < want {
		return fmt.Errorf("parallel fleet speedup x%.2f below floor x%.2f", cur.Speedup, want)
	}
	return nil
}

// validateSummary checks a run-summary file the way the CI full tier does:
// it must parse, satisfy RunSummary.Validate, and carry the scheduler and
// counter fields downstream tooling keys on.
func validateSummary(path string) error {
	s, err := telemetry.ReadSummaryFile(path)
	if err != nil {
		return err
	}
	if len(s.Counters) == 0 {
		return fmt.Errorf("no counters recorded")
	}
	if s.AvgVideoKbps <= 0 {
		return fmt.Errorf("avg_video_kbps = %v, want > 0", s.AvgVideoKbps)
	}
	fmt.Printf("summary ok: scheme=%s content=%s target=%.0f kbps (video %.0f / patch %.0f, share %.3f) duty=%.2f infer p50/p99 %.2f/%.2f ms\n",
		s.Scheme, s.Content, s.AvgTargetKbps, s.AvgVideoKbps, s.AvgPatchKbps, s.PatchShare,
		s.TrainerDutyCycle, s.InferP50MS, s.InferP99MS)
	return nil
}

// edgeRecord mirrors cmd/livenas-bench's -edgebench JSON (BENCH_edge.json).
type edgeRecord struct {
	Schema      int     `json:"schema"`
	Sims        int     `json:"sims"`
	Viewers     int     `json:"viewers"`
	Workers     int     `json:"workers"`
	SerialS     float64 `json:"serial_s"`
	ParallS     float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	SerialVPS   float64 `json:"viewers_per_sec_serial"`
	ParallelVPS float64 `json:"viewers_per_sec_parallel"`
	Delivered   int     `json:"delivered"`
	SegP99MS    float64 `json:"seg_p99_ms"`
}

func readEdgeRecord(path string) (*edgeRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r edgeRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Sims <= 0 || r.Viewers <= 0 || r.Delivered <= 0 || r.SerialS <= 0 || r.ParallS <= 0 || r.Speedup <= 0 {
		return nil, fmt.Errorf("%s: non-positive edge figures: %+v", path, r)
	}
	return &r, nil
}

// currentEdge loads path, or records a fresh edgebench run when empty.
func currentEdge(path string) (*edgeRecord, error) {
	if path != "" {
		return readEdgeRecord(path)
	}
	tmp, err := os.CreateTemp("", "edge_current_*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	cmd := exec.Command("go", "run", "./cmd/livenas-bench", "-edgebench", tmp.Name())
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("livenas-bench -edgebench: %w", err)
	}
	return readEdgeRecord(tmp.Name())
}

// edgeGate compares the edge fan-out plan's execution against the
// committed baseline the same way fleetGate does. The virtual-time
// delivery p99 (and the delivered-segment count) is pure simulated time,
// so it must match the baseline exactly on every host — a mismatch means
// the fan-out plan itself changed or went nondeterministic. The parallel
// speedup (viewers/sec at the worker pool over workers=1) is gated against
// the baseline capped at this host's cores, threshold noise allowed,
// skipped on a single core.
func edgeGate(basePath, curPath string, threshold float64, retries int) error {
	base, err := readEdgeRecord(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := currentEdge(curPath)
	if err != nil {
		return err
	}
	if cur.SegP99MS != base.SegP99MS {
		return fmt.Errorf("delivery p99 %.3fms differs from baseline %.3fms: the virtual fan-out plan changed (simulated time cannot be host-dependent)",
			cur.SegP99MS, base.SegP99MS)
	}
	if cur.Delivered != base.Delivered || cur.Viewers != base.Viewers || cur.Sims != base.Sims {
		return fmt.Errorf("plan shape %d sims / %d viewers / %d delivered, baseline %d / %d / %d",
			cur.Sims, cur.Viewers, cur.Delivered, base.Sims, base.Viewers, base.Delivered)
	}
	cores := runtime.NumCPU()
	if cores < 2 {
		fmt.Printf("edge gate: fan-out plan matches baseline (p99 %.1fms, %d delivered); single-core host, parallel speedup unmeasurable; skipping\n",
			base.SegP99MS, base.Delivered)
		return nil
	}
	want := base.Speedup
	if lim := float64(cores); want > lim {
		want = lim
	}
	want *= 1 - threshold
	for attempt := 0; cur.Speedup < want && attempt < retries && curPath == ""; attempt++ {
		fmt.Printf("edge gate: speedup x%.2f below x%.2f, retrying (wall-clock runs are noisy)\n",
			cur.Speedup, want)
		again, err := currentEdge("")
		if err != nil {
			return fmt.Errorf("retry: %w", err)
		}
		if again.SegP99MS != base.SegP99MS {
			return fmt.Errorf("delivery p99 %.3fms differs from baseline %.3fms on retry", again.SegP99MS, base.SegP99MS)
		}
		if again.Speedup > cur.Speedup {
			cur = again
		}
	}
	fmt.Printf("edge gate: %d sims / %d viewers, %d workers: %.0f -> %.0f viewers/s = x%.2f (baseline x%.2f, floor x%.2f); delivery p99 %.1fms matches\n",
		cur.Sims, cur.Viewers, cur.Workers, cur.SerialVPS, cur.ParallelVPS, cur.Speedup, base.Speedup, want, cur.SegP99MS)
	if cur.Speedup < want {
		return fmt.Errorf("parallel edge speedup x%.2f below floor x%.2f", cur.Speedup, want)
	}
	return nil
}
