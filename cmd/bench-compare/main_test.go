package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func fullBenchFile(speedup float64) *benchFile {
	f := &benchFile{Benches: map[string]entry{}}
	for _, name := range tracked {
		f.Benches[name] = entry{
			Kernel:  variant{NsOp: 100},
			Ref:     variant{NsOp: 100 * speedup},
			Speedup: speedup,
		}
	}
	return f
}

func writeBenchFile(t *testing.T, f *benchFile) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadBenchFileAcceptsComplete(t *testing.T) {
	path := writeBenchFile(t, fullBenchFile(2.0))
	if _, err := readBenchFile(path); err != nil {
		t.Fatalf("complete file rejected: %v", err)
	}
}

// TestReadBenchFileRejectsMissingTracked pins the gate contract: a candidate
// file that dropped any tracked bench — including the int8/4K entries — is
// an error, never a zero-value pass.
func TestReadBenchFileRejectsMissingTracked(t *testing.T) {
	for _, name := range tracked {
		f := fullBenchFile(2.0)
		delete(f.Benches, name)
		path := writeBenchFile(t, f)
		if _, err := readBenchFile(path); err == nil {
			t.Fatalf("file missing tracked bench %q was accepted", name)
		}
	}
}

func TestReadBenchFileRejectsNonPositive(t *testing.T) {
	f := fullBenchFile(2.0)
	e := f.Benches["inference_4k"]
	e.Speedup = 0
	f.Benches["inference_4k"] = e
	path := writeBenchFile(t, f)
	if _, err := readBenchFile(path); err == nil {
		t.Fatal("file with zero speedup was accepted")
	}
}

func TestCompareFlagsMissingAndRegressed(t *testing.T) {
	base, cur := fullBenchFile(2.0), fullBenchFile(2.0)

	// A key missing from the candidate map must fail even if a buggy caller
	// bypassed readBenchFile's validation.
	delete(cur.Benches, "inference_1080p_int8")
	// A genuine regression beyond the threshold must fail too.
	e := cur.Benches["conv_forward"]
	e.Speedup = 1.0
	cur.Benches["conv_forward"] = e

	failed := compare(base, cur, 0.15)
	want := map[string]bool{"inference_1080p_int8": true, "conv_forward": true}
	if len(failed) != len(want) {
		t.Fatalf("failed = %v, want keys %v", failed, want)
	}
	for _, name := range failed {
		if !want[name] {
			t.Fatalf("unexpected failure %q in %v", name, failed)
		}
	}

	// Within-threshold noise passes.
	e = cur.Benches["conv_backward"]
	e.Speedup = 2.0 * 0.9
	cur.Benches["conv_backward"] = e
	for _, name := range compare(base, cur, 0.15) {
		if name == "conv_backward" {
			t.Fatal("within-threshold drop reported as regression")
		}
	}
}

func writeFleetRecord(t *testing.T, r *fleetRecord) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleFleetRecord() *fleetRecord {
	return &fleetRecord{
		Schema: 1, Streams: 6, GPUs: 2, Sessions: 6, Workers: 4,
		SerialS: 12, ParallS: 4, Speedup: 3,
		SerialSPS: 0.5, ParallelSPS: 1.5, AdmitP99MS: 45000,
	}
}

func TestReadFleetRecordValidation(t *testing.T) {
	if _, err := readFleetRecord(writeFleetRecord(t, sampleFleetRecord())); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := sampleFleetRecord()
	bad.Sessions = 0
	if _, err := readFleetRecord(writeFleetRecord(t, bad)); err == nil {
		t.Fatal("record with zero sessions accepted")
	}
}

// TestFleetGateAdmissionPin pins the determinism half of the fleet gate: a
// p99 admission latency differing from the baseline fails regardless of
// throughput, because simulated time cannot be host-dependent.
func TestFleetGateAdmissionPin(t *testing.T) {
	base := sampleFleetRecord()
	cur := sampleFleetRecord()
	cur.AdmitP99MS = 45001
	err := fleetGate(writeFleetRecord(t, base), writeFleetRecord(t, cur), 0.15, 0)
	if err == nil {
		t.Fatal("p99 mismatch passed the gate")
	}
	cur = sampleFleetRecord()
	cur.Sessions = 5
	if err := fleetGate(writeFleetRecord(t, base), writeFleetRecord(t, cur), 0.15, 0); err == nil {
		t.Fatal("session-count mismatch passed the gate")
	}
}

func TestFleetGateSpeedup(t *testing.T) {
	base := sampleFleetRecord()
	ok := sampleFleetRecord()
	err := fleetGate(writeFleetRecord(t, base), writeFleetRecord(t, ok), 0.15, 0)
	if err != nil {
		t.Fatalf("matching record failed the gate: %v", err)
	}
	slow := sampleFleetRecord()
	slow.Speedup = 1.0
	err = fleetGate(writeFleetRecord(t, base), writeFleetRecord(t, slow), 0.15, 0)
	if runtime.NumCPU() < 2 {
		// Single-core hosts skip the speedup dimension entirely.
		if err != nil {
			t.Fatalf("single-core host must skip the speedup gate: %v", err)
		}
	} else if err == nil {
		t.Fatal("collapsed speedup passed the gate on a multi-core host")
	}
}
