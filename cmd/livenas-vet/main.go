// Command livenas-vet runs the project-specific static checks of
// internal/analysis over the module: deterministic-replay enforcement,
// unchecked wire-write errors, mutex lock/defer hygiene, exhaustive
// wire-message switches, and float precision churn in the hot numeric
// kernels. It is part of the pre-merge gate (scripts/check.sh).
//
// Usage:
//
//	go run ./cmd/livenas-vet [-checks c1,c2] [-list] [-json] \
//	    [-baseline file] [-write-baseline file] [packages]
//
// Package patterns are import-path prefixes relative to the module root:
// "./..." (default) analyses everything, "./internal/..." a subtree, and
// "./internal/sr" a single package. Findings are silenced in place with a
// `//livenas:allow <check> <why>` directive; see DESIGN.md "Correctness
// tooling".
//
// -json renders findings as a stable JSON array with module-root-relative
// paths. -baseline filters findings through a committed acceptance file
// (analysis/baseline.json): only findings absent from the baseline fail
// the gate, and entries that no longer match anything are reported as
// stale. -write-baseline regenerates that file from the current findings,
// carrying existing justifications over; new entries are written with an
// empty justification that must be filled in before the baseline loads.
//
// Exit status is 1 when (non-baselined) findings remain, 2 on load
// failure or an invalid baseline.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"livenas/internal/analysis"
)

func main() {
	var (
		checksFlag    = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list          = flag.Bool("list", false, "list available checks and exit")
		jsonOut       = flag.Bool("json", false, "render findings as a JSON array with module-relative paths")
		baselinePath  = flag.String("baseline", "", "filter findings through this committed baseline file")
		writeBaseline = flag.String("write-baseline", "", "write the current findings to this baseline file and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.AllChecks() {
			fmt.Printf("%-22s %s\n", c.Name, c.Doc)
		}
		return
	}
	checks := analysis.AllChecks()
	if *checksFlag != "" {
		checks = checks[:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			c := analysis.CheckByName(strings.TrimSpace(name))
			if c == nil {
				fatalf("unknown check %q (try -list)", name)
			}
			checks = append(checks, c)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, modPath, err := analysis.FindModule(wd)
	if err != nil {
		fatalf("%v", err)
	}
	loader := analysis.NewLoader(token.NewFileSet(), root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs = filterPackages(pkgs, flag.Args(), modPath)
	if len(pkgs) == 0 {
		// A typo'd pattern must not pass the gate vacuously.
		fatalf("no packages match %v", flag.Args())
	}

	warned := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "livenas-vet: warning: %v\n", e)
			warned = true
		}
	}
	if warned {
		fmt.Fprintln(os.Stderr, "livenas-vet: warning: type errors above; results may be incomplete")
	}

	diags := analysis.Run(pkgs, checks)

	if *writeBaseline != "" {
		// Best effort: carry justifications over from the old file; a
		// missing or invalid old baseline just means starting fresh.
		prev, _ := analysis.LoadBaseline(*writeBaseline)
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fatalf("%v", err)
		}
		b := analysis.NewBaseline(diags, prev)
		if err := b.WriteBaseline(f); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		if err := b.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "livenas-vet: wrote %s, but it will not load until justified: %v\n", *writeBaseline, err)
		}
		return
	}

	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		fresh, stale := b.Apply(diags)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "livenas-vet: warning: stale baseline entry (%s in %s): finding no longer present, remove it\n", e.Check, e.Package)
		}
		diags = fresh
	}

	if *jsonOut {
		if err := analysis.RenderJSON(os.Stdout, diags, root); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// filterPackages keeps packages matching the command-line patterns:
// "./..." keeps everything, "./dir/..." a subtree, "./dir" one package.
func filterPackages(pkgs []*analysis.Package, patterns []string, modPath string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(p *analysis.Package) bool {
		for _, pat := range patterns {
			pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
			if pat == "..." || pat == "." {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				prefix := modPath + "/" + sub
				if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
					return true
				}
				continue
			}
			if p.Path == modPath+"/"+pat || (pat == "" && p.Path == modPath) {
				return true
			}
		}
		return false
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "livenas-vet: "+format+"\n", args...)
	os.Exit(2)
}
