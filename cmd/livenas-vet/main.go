// Command livenas-vet runs the project-specific static checks of
// internal/analysis over the module: deterministic-replay taint tracking,
// context propagation to blocking points, sync/atomic consistency, arena
// lifetimes, goroutine joins, lock ordering, lockset race detection with
// guarded-by inference, asm/build-tag hygiene for the assembly kernels,
// unchecked wire-write errors, mutex lock/defer hygiene, exhaustive
// wire-message switches, and float precision churn in the hot numeric
// kernels. It is part of the pre-merge gate (scripts/check.sh,
// scripts/ci.sh).
//
// Usage:
//
//	go run ./cmd/livenas-vet [-checks c1,c2] [-skip c3] [-list] [-json] \
//	    [-j N] [-cache-dir DIR] [-stats] \
//	    [-baseline file [-prune-baseline]] [-write-baseline file] \
//	    [-bench file] [packages]
//
// Package patterns are import-path prefixes relative to the module root:
// "./..." (default) analyses everything, "./internal/..." a subtree, and
// "./internal/sr" a single package. Findings are silenced in place with a
// `//livenas:allow <check> <why>` directive; see DESIGN.md "Correctness
// tooling".
//
// The engine behind the flags is internal/analysis's incremental driver:
// -j bounds check-level parallelism (default GOMAXPROCS) and -cache-dir
// enables the on-disk facts cache, keyed by each package's dependency-
// closure content hash, so a warm re-run after a leaf edit re-analyzes
// only the edited package's dependents and a fully-warm run type-checks
// nothing at all. Output is byte-identical for any -j.
//
// -json renders findings as a stable JSON array with module-root-relative
// paths. -baseline filters findings through a committed acceptance file
// (analysis/baseline.json): only findings absent from the baseline fail
// the gate, and entries that no longer match anything are reported as
// stale (-prune-baseline rewrites the file with the stale entries
// removed). -write-baseline regenerates that file from the current
// findings, carrying existing justifications over. -bench measures the
// cold/warm and serial/parallel engine costs in-process and writes a
// BENCH_vet.json record for the bench-regression gate.
//
// Exit status is 1 when (non-baselined) findings remain, 2 on load
// failure or an invalid baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"livenas/internal/analysis"
)

func main() {
	var (
		checksFlag    = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		skipFlag      = flag.String("skip", "", "comma-separated checks to exclude from the selection")
		list          = flag.Bool("list", false, "list available checks and exit")
		jsonOut       = flag.Bool("json", false, "render findings as a JSON array with module-relative paths")
		jobs          = flag.Int("j", 0, "max parallel analysis tasks (0 = GOMAXPROCS)")
		cacheDir      = flag.String("cache-dir", "", "facts-cache directory (empty = caching off)")
		stats         = flag.Bool("stats", false, "print cache/parallelism statistics to stderr")
		baselinePath  = flag.String("baseline", "", "filter findings through this committed baseline file")
		pruneBaseline = flag.Bool("prune-baseline", false, "rewrite -baseline with stale entries removed")
		writeBaseline = flag.String("write-baseline", "", "write the current findings to this baseline file and exit")
		benchOut      = flag.String("bench", "", "measure cold/warm engine cost and write a BENCH_vet.json record to this file")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.AllChecks() {
			kind := "package"
			switch {
			case c.Global:
				kind = "module/global"
			case c.RunModule != nil:
				kind = "module"
			}
			fmt.Printf("%-22s [%-13s] %s\n", c.Name, kind, c.Doc)
		}
		return
	}

	checks := selectChecks(*checksFlag, *skipFlag)

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, modPath, err := analysis.FindModule(wd)
	if err != nil {
		fatalf("%v", err)
	}

	if *benchOut != "" {
		if err := runBench(root, modPath, checks, flag.Args(), *jobs, *benchOut); err != nil {
			fatalf("bench: %v", err)
		}
		return
	}

	res, err := analysis.RunDriver(root, modPath, analysis.DriverOptions{
		Checks:   checks,
		Patterns: flag.Args(),
		Jobs:     *jobs,
		CacheDir: *cacheDir,
	})
	if err != nil {
		fatalf("%v", err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "livenas-vet: warning: %v\n", w)
	}
	if *stats {
		s := res.Stats
		global := "none"
		switch {
		case s.GlobalRan:
			global = "ran"
		case s.GlobalReused:
			global = "cached"
		}
		fmt.Fprintf(os.Stderr, "livenas-vet: %d targets: %d analyzed, %d cached; %d packages loaded; global checks %s\n",
			s.Targets, len(s.Analyzed), len(s.Reused), s.Loaded, global)
	}
	diags := res.Diags

	if *writeBaseline != "" {
		// Best effort: carry justifications over from the old file; a
		// missing or invalid old baseline just means starting fresh.
		prev, _ := analysis.LoadBaseline(*writeBaseline)
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fatalf("%v", err)
		}
		b := analysis.NewBaseline(diags, prev)
		if err := b.WriteBaseline(f); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		if err := b.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "livenas-vet: wrote %s, but it will not load until justified: %v\n", *writeBaseline, err)
		}
		return
	}

	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		fresh, stale := b.Apply(diags)
		if len(stale) > 0 && *pruneBaseline {
			if err := prune(*baselinePath, b, stale); err != nil {
				fatalf("prune baseline: %v", err)
			}
			fmt.Fprintf(os.Stderr, "livenas-vet: pruned %d stale entr%s from %s\n",
				len(stale), plural(len(stale), "y", "ies"), *baselinePath)
		} else {
			for _, e := range stale {
				fmt.Fprintf(os.Stderr, "livenas-vet: warning: stale baseline entry (%s in %s): finding no longer present, remove it (or run with -prune-baseline)\n", e.Check, e.Package)
			}
		}
		diags = fresh
	} else if *pruneBaseline {
		fatalf("-prune-baseline requires -baseline")
	}

	if *jsonOut {
		if err := analysis.RenderJSON(os.Stdout, diags, root); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectChecks resolves -checks and -skip into a check list, failing fast
// on unknown names so a typo can't silently disable a gate.
func selectChecks(include, exclude string) []*analysis.Check {
	checks := analysis.AllChecks()
	if include != "" {
		checks = checks[:0]
		for _, name := range strings.Split(include, ",") {
			c := analysis.CheckByName(strings.TrimSpace(name))
			if c == nil {
				fatalf("unknown check %q (try -list)", name)
			}
			checks = append(checks, c)
		}
	}
	if exclude != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(exclude, ",") {
			name = strings.TrimSpace(name)
			if analysis.CheckByName(name) == nil {
				fatalf("unknown check %q in -skip (try -list)", name)
			}
			skip[name] = true
		}
		kept := checks[:0]
		for _, c := range checks {
			if !skip[c.Name] {
				kept = append(kept, c)
			}
		}
		checks = kept
		if len(checks) == 0 {
			fatalf("-skip removed every selected check")
		}
	}
	return checks
}

// prune rewrites the baseline file without the stale entries.
func prune(path string, b *analysis.Baseline, stale []analysis.BaselineEntry) error {
	staleSet := map[string]bool{}
	for _, e := range stale {
		staleSet[e.Check+"\x00"+e.Package+"\x00"+e.Message] = true
	}
	kept := b.Findings[:0]
	for _, e := range b.Findings {
		if !staleSet[e.Check+"\x00"+e.Package+"\x00"+e.Message] {
			kept = append(kept, e)
		}
	}
	b.Findings = kept
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteBaseline(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// vetBenchRecord is the BENCH_vet.json schema the bench-regression gate
// (cmd/bench-compare -vet) reads. All ratios are measured within one
// process on one machine, so host speed cancels.
type vetBenchRecord struct {
	Schema          int     `json:"schema"`
	Cores           int     `json:"cores"`
	Jobs            int     `json:"jobs"`
	Packages        int     `json:"packages"`
	ColdJ1S         float64 `json:"cold_j1_s"`
	ColdJNS         float64 `json:"cold_jn_s"`
	WarmS           float64 `json:"warm_s"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// runBench measures the engine three ways — cold serial, cold parallel,
// fully warm — and writes the record. The warm run reuses the cold
// parallel run's cache directory, so warm_speedup = cold_jn_s / warm_s is
// exactly the saving a developer sees on an unchanged re-run.
//
//livenas:allow determinism-taint benchmarking wall-clock cost is the point
func runBench(root, modPath string, checks []*analysis.Check, patterns []string, jobs int, out string) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	timed := func(j int, dir string) (float64, *analysis.DriverResult, error) {
		t0 := time.Now()
		res, err := analysis.RunDriver(root, modPath, analysis.DriverOptions{
			Checks: checks, Patterns: patterns, Jobs: j, CacheDir: dir,
		})
		return time.Since(t0).Seconds(), res, err
	}

	dir1, err := os.MkdirTemp("", "vetbench-j1-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir1)
	dirN, err := os.MkdirTemp("", "vetbench-jn-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirN)

	fmt.Fprintf(os.Stderr, "vet bench: cold run, -j 1\n")
	coldJ1, _, err := timed(1, dir1)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vet bench: cold run, -j %d\n", jobs)
	coldJN, _, err := timed(jobs, dirN)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vet bench: warm run, -j %d\n", jobs)
	warm, warmRes, err := timed(jobs, dirN)
	if err != nil {
		return err
	}
	if warmRes.Stats.Loaded != 0 {
		return fmt.Errorf("warm run loaded %d packages; expected a fully-warm cache", warmRes.Stats.Loaded)
	}

	rec := vetBenchRecord{
		Schema:          1,
		Cores:           runtime.NumCPU(),
		Jobs:            jobs,
		Packages:        warmRes.Stats.Targets,
		ColdJ1S:         coldJ1,
		ColdJNS:         coldJN,
		WarmS:           warm,
		WarmSpeedup:     coldJN / warm,
		ParallelSpeedup: coldJ1 / coldJN,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vet bench: %d packages: cold %.2fs (j1) / %.2fs (j%d), warm %.3fs; warm speedup x%.1f, parallel x%.2f -> %s\n",
		rec.Packages, coldJ1, coldJN, jobs, warm, rec.WarmSpeedup, rec.ParallelSpeedup, out)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "livenas-vet: "+format+"\n", args...)
	os.Exit(2)
}
