// Command livenas-vet runs the project-specific static checks of
// internal/analysis over the module: deterministic-replay enforcement,
// unchecked wire-write errors, mutex lock/defer hygiene, exhaustive
// wire-message switches, and float precision churn in the hot numeric
// kernels. It is part of the pre-merge gate (scripts/check.sh).
//
// Usage:
//
//	go run ./cmd/livenas-vet [-checks c1,c2] [-list] [packages]
//
// Package patterns are import-path prefixes relative to the module root:
// "./..." (default) analyses everything, "./internal/..." a subtree, and
// "./internal/sr" a single package. Findings are silenced in place with a
// `//livenas:allow <check> <why>` directive; see DESIGN.md "Correctness
// tooling". Exit status is 1 when findings remain, 2 on load failure.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"livenas/internal/analysis"
)

func main() {
	var (
		checksFlag = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list       = flag.Bool("list", false, "list available checks and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.AllChecks() {
			fmt.Printf("%-22s %s\n", c.Name, c.Doc)
		}
		return
	}
	checks := analysis.AllChecks()
	if *checksFlag != "" {
		checks = checks[:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			c := analysis.CheckByName(strings.TrimSpace(name))
			if c == nil {
				fatalf("unknown check %q (try -list)", name)
			}
			checks = append(checks, c)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, modPath, err := analysis.FindModule(wd)
	if err != nil {
		fatalf("%v", err)
	}
	loader := analysis.NewLoader(token.NewFileSet(), root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs = filterPackages(pkgs, flag.Args(), modPath)
	if len(pkgs) == 0 {
		// A typo'd pattern must not pass the gate vacuously.
		fatalf("no packages match %v", flag.Args())
	}

	warned := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "livenas-vet: warning: %v\n", e)
			warned = true
		}
	}
	if warned {
		fmt.Fprintln(os.Stderr, "livenas-vet: warning: type errors above; results may be incomplete")
	}

	diags := analysis.Run(pkgs, checks)
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// filterPackages keeps packages matching the command-line patterns:
// "./..." keeps everything, "./dir/..." a subtree, "./dir" one package.
func filterPackages(pkgs []*analysis.Package, patterns []string, modPath string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(p *analysis.Package) bool {
		for _, pat := range patterns {
			pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
			if pat == "..." || pat == "." {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				prefix := modPath + "/" + sub
				if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
					return true
				}
				continue
			}
			if p.Path == modPath+"/"+pat || (pat == "" && p.Path == modPath) {
				return true
			}
		}
		return false
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "livenas-vet: "+format+"\n", args...)
	os.Exit(2)
}
