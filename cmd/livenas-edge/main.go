// Command livenas-edge is the distribution edge over real TCP. In relay
// mode (the default) it subscribes upstream — to livenas-server's origin
// endpoint or to another livenas-edge, so trees stack arbitrarily deep —
// and fans playlists and segments out to downstream subscribers, serving
// segments from a pull-through cache with request coalescing. Each
// downstream connection sends through a bounded drop-oldest queue: a
// viewer that cannot keep up loses stale segments, never the stream.
//
// In viewer mode (-view CHANNEL) it plays a channel instead: subscribe,
// follow the rolling playlist, fetch segments at the rung robustMPC picks,
// and log playback progress.
//
//	livenas-server -listen :9455 -once=false &
//	livenas-edge -connect 127.0.0.1:9455 -listen :9456 &
//	livenas-edge -connect 127.0.0.1:9456 -listen :9457 &          # second tier
//	livenas-client -connect 127.0.0.1:9455 -channel alice &
//	livenas-edge -view alice -connect 127.0.0.1:9457 -duration 30s
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"livenas/internal/edge"
	"livenas/internal/transport"
	"livenas/internal/wire"
)

func main() {
	var (
		connect  = flag.String("connect", "127.0.0.1:9455", "upstream address (origin or another relay)")
		listen   = flag.String("listen", ":9456", "downstream TCP listen address (relay mode)")
		view     = flag.String("view", "", "play this channel as a viewer instead of relaying")
		queue    = flag.Int("queue", 1<<20, "per-subscriber send-queue bound in bytes (drop-oldest past it)")
		duration = flag.Duration("duration", 30*time.Second, "viewer mode: how long to play")
	)
	flag.Parse()

	up, err := transport.Dial(*connect)
	if err != nil {
		log.Fatalf("connect upstream %s: %v", *connect, err)
	}
	// Upstream sends (subscribes, coalesced segment requests) are small
	// control traffic: queued so handlers never block, but never dropped.
	upq := transport.NewQueuedConn(up, 0)
	defer upq.Close()

	clock := edge.NewWallClock()
	tel := edge.NewTelemetry(nil)

	if *view != "" {
		runViewer(clock, tel, upq, *view, *duration)
		return
	}

	relay := edge.NewRelay(clock, upq, tel)
	go func() {
		err := transport.Pump(upq, relay.HandleUpstream)
		log.Fatalf("upstream %s gone: %v", *connect, err)
	}()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("livenas-edge relaying %s on %s (queue %d bytes/subscriber)", *connect, ln.Addr(), *queue)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		// One pump goroutine per downstream subscriber; sends go through a
		// bounded drop-oldest queue so one slow viewer never stalls the
		// relay's handlers or its other subscribers.
		go func(c net.Conn) {
			qc := transport.NewQueuedConn(transport.NewNetConn(c), *queue)
			defer qc.Close()
			log.Printf("subscriber %s connected", c.RemoteAddr())
			err := transport.Pump(qc, func(m *wire.Message) { relay.HandleDownstream(qc, m) })
			relay.RemoveConn(qc)
			log.Printf("subscriber %s gone: %v", c.RemoteAddr(), err)
		}(conn)
	}
}

// runViewer plays one channel off the upstream connection and reports
// playback stats on exit.
func runViewer(clock edge.Clock, tel *edge.Telemetry, conn transport.Conn, channel string, dur time.Duration) {
	v := edge.NewViewer(clock, edge.ViewerConfig{
		Channel: channel,
		OnPlay: func(index, rung int) {
			log.Printf("playing segment %d (rung %d)", index, rung)
		},
	}, tel)
	go transport.Pump(conn, v.Handle)
	if err := v.Attach(conn); err != nil {
		log.Fatalf("subscribe %s: %v", channel, err)
	}
	time.Sleep(dur) //livenas:allow determinism-taint real viewer plays in wall-clock time
	st := v.Finish()
	log.Printf("viewer done: %d segments played, %d skipped, %d timeouts, %d bytes, %.1fs stalled",
		st.Played, st.Skipped, st.Timeouts, st.Bytes, st.Stall.Seconds())
	if st.Played == 0 {
		log.Fatalf("no segments played")
	}
}
