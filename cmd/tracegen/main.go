// Command tracegen emits synthetic network traces (one "kbps" sample per
// line, Mahimahi-style) from the generators used across the evaluation.
//
//	tracegen -kind fcc-up -mean 4000 -dur 5m -seed 3 > trace.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"livenas/internal/trace"
)

func main() {
	var (
		kind = flag.String("kind", "fcc-up", "trace family: fcc-up, fcc-down, 3g, pensieve")
		mean = flag.Float64("mean", 4000, "mean kbps (fcc-up only)")
		dur  = flag.Duration("dur", 5*time.Minute, "trace duration")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *kind {
	case "fcc-up":
		tr = trace.FCCUplink(*seed, *dur, *mean)
	case "fcc-down":
		tr = trace.FCCDownlink(*seed, *dur)
	case "3g":
		tr = trace.ThreeG(*seed, *dur)
	case "pensieve":
		tr = trace.PensieveDownlink(*seed, *dur)
	default:
		log.Fatalf("unknown trace kind %q", *kind)
	}
	fmt.Printf("# %s  dt=%v  avg=%.0f kbps\n", tr.Name, tr.DT, tr.Avg())
	for _, k := range tr.Kbps {
		fmt.Printf("%.0f\n", k)
	}
}
